"""Software crypto performance model (paper §IV).

"According to Intel, its AES GCM-128 performance on Haswell is 1.26
cycles per byte for encrypt and decrypt each.  Thus, at a 2.4 GHz clock
frequency, 40 Gb/s encryption/decryption consumes roughly five cores.
Different standards, such as 256b or CBC are, however, significantly
slower. ... AES-CBC-128-SHA1 ... consumes at least fifteen cores to
achieve 40 Gb/s full duplex."

The model exposes cycles/byte per cipher suite and converts to cores
needed at a line rate, and to per-packet software latency (fixed stack
overhead + byte-proportional compute) — the paper quotes ~4 us for a
1500 B packet under AES-CBC-128-SHA1 in software.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CipherSuite:
    """Per-suite software cost (one direction)."""

    name: str
    cycles_per_byte: float


#: Intel Haswell figures (1.26 c/B is the published GCM-128 number; the
#: others are scaled per the paper's "significantly slower" relations —
#: CBC cannot pipeline across blocks and SHA-1 adds a second pass).
HASWELL_SUITES: Dict[str, CipherSuite] = {
    "aes-gcm-128": CipherSuite("aes-gcm-128", 1.26),
    "aes-gcm-256": CipherSuite("aes-gcm-256", 1.72),
    "aes-cbc-128": CipherSuite("aes-cbc-128", 2.40),
    "aes-cbc-128-sha1": CipherSuite("aes-cbc-128-sha1", 3.60),
}


@dataclass
class SoftwareCryptoModel:
    """A host CPU doing crypto in software."""

    clock_hz: float = 2.4e9
    #: Per-packet overhead: syscall/stack/cache disturbance floor.
    per_packet_overhead: float = 1.75e-6
    suites: Dict[str, CipherSuite] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.suites is None:
            self.suites = dict(HASWELL_SUITES)

    def _suite(self, name: str) -> CipherSuite:
        try:
            return self.suites[name]
        except KeyError:
            raise KeyError(f"unknown cipher suite {name!r}") from None

    def throughput_per_core_bps(self, suite: str) -> float:
        """One core's crypto throughput for ``suite`` (one direction)."""
        s = self._suite(suite)
        return self.clock_hz / s.cycles_per_byte * 8

    def cores_for_line_rate(self, suite: str, line_rate_bps: float = 40e9,
                            full_duplex: bool = True) -> float:
        """Cores consumed to run ``suite`` at line rate.

        ``full_duplex`` doubles the work (encrypt + decrypt streams), which
        is how the paper counts: GCM-128 at 40 Gb/s ~ 5 cores; CBC-SHA1
        full duplex >= 15 cores.
        """
        directions = 2 if full_duplex else 1
        return directions * line_rate_bps / \
            self.throughput_per_core_bps(suite)

    def cores_for_line_rate_int(self, suite: str,
                                line_rate_bps: float = 40e9,
                                full_duplex: bool = True) -> int:
        return math.ceil(self.cores_for_line_rate(
            suite, line_rate_bps, full_duplex))

    def packet_latency(self, suite: str, nbytes: int) -> float:
        """Software latency to encrypt (or decrypt) one packet."""
        s = self._suite(suite)
        return self.per_packet_overhead + nbytes * s.cycles_per_byte \
            / self.clock_hz
