"""Torus latency model, calibrated to the paper's v1 measurements.

"Nearest neighbor (1-hop) communication had a round-trip latency of
approximately 1 us.  However, worst-case round-trip communication in the
torus requires 7 usec" — the 6x8 torus diameter is 3 + 4 = 7 hops, i.e.
~0.5 us per hop each way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from .topology import TorusTopology

#: One-way per-hop latency on the dedicated SAS links.
HOP_LATENCY_SECONDS = 0.5e-6
#: Per-hop latency jitter (arbitration with passing traffic).
HOP_JITTER_SECONDS = 0.02e-6


@dataclass
class TorusLatencyModel:
    """Round-trip latency of FPGA-to-FPGA messages in the torus."""

    topology: TorusTopology
    hop_latency: float = HOP_LATENCY_SECONDS
    hop_jitter: float = HOP_JITTER_SECONDS

    def round_trip(self, src: int, dst: int,
                   rng: Optional[random.Random] = None) -> Optional[float]:
        """RTT seconds, or None if ``dst`` is unreachable from ``src``."""
        hops = self.topology.hops(src, dst)
        if hops is None:
            return None
        base = 2 * hops * self.hop_latency
        if rng is not None and hops > 0:
            base += sum(abs(rng.gauss(0.0, self.hop_jitter))
                        for _ in range(2 * hops))
        return base

    def all_pair_round_trips(self, rng: Optional[random.Random] = None) \
            -> List[float]:
        """RTTs for every reachable ordered pair (Fig. 10's torus band)."""
        out: List[float] = []
        n = self.topology.num_nodes
        for src in range(n):
            if self.topology.is_failed(self.topology.coord(src)):
                continue
            for dst in range(n):
                if dst == src:
                    continue
                rtt = self.round_trip(src, dst, rng)
                if rtt is not None:
                    out.append(rtt)
        return out

    def reachable_count(self, src: int) -> int:
        """How many FPGAs ``src`` can reach (<= 47; shrinks on failures)."""
        return sum(
            1 for dst in range(self.topology.num_nodes)
            if dst != src and self.topology.hops(src, dst) is not None)
