"""Catapult v1 6x8 torus baseline (paper §V-C / Fig. 10)."""

from .network import (
    HOP_JITTER_SECONDS,
    HOP_LATENCY_SECONDS,
    TorusLatencyModel,
)
from .topology import Coordinate, TorusTopology

__all__ = [
    "Coordinate",
    "HOP_JITTER_SECONDS",
    "HOP_LATENCY_SECONDS",
    "TorusLatencyModel",
    "TorusTopology",
]
