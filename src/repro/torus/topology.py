"""The Catapult v1 secondary network: a 6x8 torus of 48 FPGAs.

Baseline for Fig. 10 and the failure-handling ablation.  The torus
connects FPGAs with dedicated SAS cables inside one rack; communication
"is strictly limited to groups of 48 FPGAs", routing is dimension-order
(X then Y) with wraparound, and node failures force rerouting "at the
cost of extra network hops and latency" — or isolate nodes entirely
"under certain failure patterns".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

Coordinate = Tuple[int, int]


@dataclass
class TorusTopology:
    """An WxH torus with optional failed nodes."""

    width: int = 6
    height: int = 8
    failed: Set[Coordinate] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("torus dimensions must be >= 2")

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coord(self, node: int) -> Coordinate:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def node(self, coord: Coordinate) -> int:
        x, y = coord
        return (y % self.height) * self.width + (x % self.width)

    def is_failed(self, coord: Coordinate) -> bool:
        return coord in self.failed

    def fail_node(self, node: int) -> None:
        self.failed.add(self.coord(node))

    def repair_node(self, node: int) -> None:
        self.failed.discard(self.coord(node))

    def neighbors(self, coord: Coordinate) -> List[Coordinate]:
        x, y = coord
        return [
            ((x + 1) % self.width, y),
            ((x - 1) % self.width, y),
            (x, (y + 1) % self.height),
            (x, (y - 1) % self.height),
        ]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _wrap_step(self, src: int, dst: int, size: int) -> int:
        """Signed single step along one dimension, shorter way round."""
        forward = (dst - src) % size
        backward = (src - dst) % size
        if forward == 0:
            return 0
        return 1 if forward <= backward else -1

    def dimension_order_path(self, src: int,
                             dst: int) -> List[Coordinate]:
        """The fault-free XY route (inclusive of both endpoints)."""
        current = self.coord(src)
        goal = self.coord(dst)
        path = [current]
        x, y = current
        while x != goal[0]:
            x = (x + self._wrap_step(x, goal[0], self.width)) % self.width
            path.append((x, y))
        while y != goal[1]:
            y = (y + self._wrap_step(y, goal[1], self.height)) % self.height
            path.append((x, y))
        return path

    def shortest_healthy_path(self, src: int,
                              dst: int) -> Optional[List[Coordinate]]:
        """BFS route avoiding failed nodes; None if dst is unreachable.

        This models the v1 fabric's rerouting: failures cost extra hops,
        and some failure patterns partition the torus.
        """
        start = self.coord(src)
        goal = self.coord(dst)
        if self.is_failed(start) or self.is_failed(goal):
            return None
        if start == goal:
            return [start]
        previous: Dict[Coordinate, Coordinate] = {}
        visited = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for nxt in self.neighbors(current):
                if nxt in visited or self.is_failed(nxt):
                    continue
                visited.add(nxt)
                previous[nxt] = current
                if nxt == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(previous[path[-1]])
                    path.reverse()
                    return path
                queue.append(nxt)
        return None

    def route(self, src: int, dst: int) -> Optional[List[Coordinate]]:
        """Preferred route: dimension-order when healthy, BFS otherwise."""
        path = self.dimension_order_path(src, dst)
        if not any(self.is_failed(c) for c in path):
            return path
        return self.shortest_healthy_path(src, dst)

    def hops(self, src: int, dst: int) -> Optional[int]:
        path = self.route(src, dst)
        return None if path is None else len(path) - 1

    def max_hops(self) -> int:
        """Network diameter of the fault-free torus."""
        return self.width // 2 + self.height // 2
