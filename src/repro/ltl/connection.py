"""Send and receive connection tables.

LTL "uses an ordered, reliable connection-based interface with statically
allocated, persistent connections, realized using send and receive
connection tables."  A connection is unidirectional: the sender holds a
:class:`SendConnectionState` (next sequence number, unacknowledged frame
store, DC-QCN rate state) and the receiver holds a
:class:`ReceiveConnectionState` (expected sequence, reorder buffer,
message reassembly).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..net.dcqcn import DcqcnConfig, DcqcnRateController
from .frames import LtlFrame


class ConnectionError_(Exception):
    """Raised for connection-table misuse (unknown/duplicate ids)."""


@dataclass
class UnackedFrame:
    """A transmitted DATA frame awaiting acknowledgement."""

    frame: LtlFrame
    first_sent_at: float
    last_sent_at: float
    transmissions: int = 1
    #: Trace-trail length right after the first transmit's tap.  On a
    #: retransmission the engine rewinds the frame's TraceContext here so
    #: the doomed traversal's wire/switch marks are not double-counted
    #: (the wait lands in ``ltl.retx`` instead).
    trace_checkpoint: int = 0


@dataclass
class SendConnectionState:
    """Sender half of a connection."""

    connection_id: int
    remote_host: int
    remote_connection_id: int
    vc: int = 0
    next_seq: int = 0
    #: Highest seq cumulatively acknowledged by the receiver.
    acked_seq: int = -1
    #: seq -> UnackedFrame, insertion-ordered (oldest first).
    unacked: "OrderedDict[int, UnackedFrame]" = field(
        default_factory=OrderedDict)
    #: Frames waiting for window space, FIFO.
    send_queue: List[LtlFrame] = field(default_factory=list)
    dcqcn: DcqcnRateController = field(
        default_factory=lambda: DcqcnRateController(DcqcnConfig()))
    #: Consecutive timeout events with no forward progress.
    consecutive_timeouts: int = 0
    failed: bool = False
    #: Whether a degraded (gray) report was already emitted for the
    #: current run of timeouts; reset on forward progress.
    degraded_reported: bool = False
    #: Reconnect probes issued since the connection failed.
    reconnect_attempts: int = 0
    #: Earliest time the next reconnect probe may go out.
    reconnect_at: float = 0.0
    # statistics
    frames_sent: int = 0
    retransmissions: int = 0
    recoveries: int = 0
    rtt_samples: List[float] = field(default_factory=list)

    @property
    def in_flight(self) -> int:
        return len(self.unacked)

    def oldest_unacked_age(self, now: float) -> float:
        """Seconds since the oldest unacked frame was last (re)sent."""
        if not self.unacked:
            return 0.0
        oldest = next(iter(self.unacked.values()))
        return now - oldest.last_sent_at

    def apply_ack(self, ack_seq: int, now: float) -> int:
        """Drop frames up to ``ack_seq``; record RTTs; return count freed."""
        freed = 0
        while self.unacked:
            seq, entry = next(iter(self.unacked.items()))
            if seq > ack_seq:
                break
            del self.unacked[seq]
            freed += 1
            # RTT measured "from the moment the header of a packet is
            # generated in LTL until the corresponding ACK ... is received"
            # — only meaningful for frames not retransmitted.
            if entry.transmissions == 1:
                self.rtt_samples.append(now - entry.first_sent_at)
        if freed:
            self.acked_seq = max(self.acked_seq, ack_seq)
            self.consecutive_timeouts = 0
            self.degraded_reported = False
        return freed


@dataclass
class PendingMessage:
    """Reassembly state for a fragmented incoming message."""

    total_fragments: int
    fragments: Dict[int, Tuple[Any, int]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return len(self.fragments) == self.total_fragments

    def assemble(self) -> Tuple[Any, int]:
        """Return (payload, total_bytes) of the completed message.

        Byte payloads are concatenated; object payloads of single-fragment
        messages pass through unchanged.
        """
        total_bytes = sum(size for _p, size in self.fragments.values())
        parts = [self.fragments[i][0] for i in range(self.total_fragments)]
        if all(isinstance(p, (bytes, bytearray)) for p in parts):
            return b"".join(bytes(p) for p in parts), total_bytes
        # Opaque payload: the object rides whole on the first fragment,
        # later fragments carry only their wire length.
        opaque = [p for p in parts if not isinstance(p, (bytes, bytearray))
                  or p]
        if len(opaque) == 1:
            return opaque[0], total_bytes
        return parts, total_bytes


@dataclass
class ReceiveConnectionState:
    """Receiver half of a connection."""

    connection_id: int
    remote_host: int
    remote_connection_id: int
    expected_seq: int = 0
    #: Out-of-order frames waiting for the gap to fill: seq -> frame.
    reorder_buffer: Dict[int, LtlFrame] = field(default_factory=dict)
    #: message_id -> PendingMessage.
    reassembly: Dict[int, PendingMessage] = field(default_factory=dict)
    # statistics
    frames_received: int = 0
    duplicates: int = 0
    out_of_order: int = 0
    nacks_sent: int = 0


class ConnectionTable:
    """A dense table of connection states, keyed by connection id.

    Matches the hardware's statically allocated tables: ids are allocated
    from a fixed-size pool and persist until deallocated.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self._entries: Dict[int, Any] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    def allocate(self) -> int:
        if not self._free:
            raise ConnectionError_("connection table full")
        return self._free.pop()

    def install(self, connection_id: int, state: Any) -> None:
        if connection_id in self._entries:
            raise ConnectionError_(
                f"connection {connection_id} already installed")
        if not 0 <= connection_id < self.capacity:
            raise ConnectionError_(
                f"connection id {connection_id} out of range")
        if connection_id in self._free:
            self._free.remove(connection_id)
        self._entries[connection_id] = state

    def lookup(self, connection_id: int) -> Any:
        state = self._entries.get(connection_id)
        if state is None:
            raise ConnectionError_(f"unknown connection {connection_id}")
        return state

    def deallocate(self, connection_id: int) -> None:
        if connection_id not in self._entries:
            raise ConnectionError_(f"unknown connection {connection_id}")
        del self._entries[connection_id]
        self._free.append(connection_id)

    def __contains__(self, connection_id: int) -> bool:
        return connection_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def values(self):
        return self._entries.values()
