"""The LTL protocol engine (paper §V-A, Fig. 9).

One engine lives in each FPGA shell.  Its blocks map to Fig. 9:

* **Packetizer and Transmit Buffer** — :meth:`LtlEngine.send_message`
  fragments messages into MTU-sized DATA frames onto a per-connection
  send frame queue.
* **Send/Receive Connection Tables** — :mod:`repro.ltl.connection`.
* **Unack'd Frame Store + Ack Receiver** — outgoing frames are buffered
  and tracked until cumulatively ACKed; timeouts (default 50 µs,
  configurable, exactly as the paper states) trigger retransmission, and
  repeated timeouts identify failing nodes.
* **Ack Generation** — every in-order DATA frame is cumulatively ACKed;
  detected reordering triggers a NACK requesting timely retransmission of
  the missing range without waiting for a timeout.
* **Congestion control** — ECN-marked arrivals piggyback a DC-QCN
  congestion flag on the ACK; the sender's per-connection
  :class:`~repro.net.dcqcn.DcqcnRateController` paces transmission.
* **Bandwidth limiting** — an optional
  :class:`~repro.ltl.ratelimit.BandwidthLimiter` keeps the FPGA from
  exceeding a configurable share of the host's network bandwidth.

The engine is transport-agnostic: anything implementing
``send_frame(dst_host, frame)`` and calling
:meth:`LtlEngine.receive_frame` works — the FPGA shell supplies the real
40G MAC + fabric transport, unit tests supply fault-injecting loopbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.dcqcn import CnpGenerator, DcqcnConfig, DcqcnRateController
from ..sim import Environment, RandomStreams
from .connection import (
    ConnectionError_,
    ConnectionTable,
    PendingMessage,
    ReceiveConnectionState,
    SendConnectionState,
    UnackedFrame,
)
from ..overload.deadline import (
    decode_deadline_us,
    encode_deadline_us,
    expires_at_of,
)
from .frames import (
    LtlFrame,
    make_ack,
    make_data_frame,
    make_nack,
    nack_range,
)
from .ratelimit import BandwidthLimiter, RandomEarlyDropper
from ..trace.stages import Stage

# Hoisted Stage members for the per-frame tap sites.
_STAGE_LTL_TX = Stage.LTL_TX
_STAGE_LTL_RETX = Stage.LTL_RETX
_STAGE_LTL_RX = Stage.LTL_RX


@dataclass
class LtlConfig:
    """Engine tunables; defaults match the production deployment."""

    #: Max DATA payload per frame (fits in a 1500 B MTU under UDP/IP/LTL).
    mtu_payload_bytes: int = 1408
    #: Max unacknowledged frames per connection.
    window_frames: int = 64
    #: Retransmission timeout — "currently set to 50 usec".
    retransmit_timeout: float = 50e-6
    #: Consecutive timeouts before the connection is declared failed
    #: ("timeouts can also be used to identify failing nodes quickly").
    max_consecutive_timeouts: int = 8
    #: LTL transmit-path processing (packetize + connection lookup).
    tx_latency: float = 0.45e-6
    #: LTL receive-path processing including ACK generation.
    rx_latency: float = 0.53e-6
    #: Processing of a received ACK (ack receiver block).
    ack_rx_latency: float = 0.18e-6
    #: Scan period of the retransmission timer wheel.
    timer_period: float = 10e-6
    #: DC-QCN configuration shared by all connections.
    dcqcn: DcqcnConfig = field(default_factory=DcqcnConfig)
    #: Enable DC-QCN pacing of the send path.
    congestion_control: bool = True
    #: Optional cap on this engine's injection bandwidth (bits/second).
    rate_limit_bps: Optional[float] = None
    #: Verify the per-frame CRC on receive; corrupt frames are dropped and
    #: recovered by the normal NACK/timeout path.
    verify_checksums: bool = True
    #: Keep probing failed connections so they re-establish once the peer
    #: comes back, instead of staying permanently failed.
    reconnect: bool = True
    #: Initial interval between reconnect probes (doubles per attempt).
    reconnect_backoff: float = 200e-6
    #: Cap on the reconnect probe interval.
    reconnect_backoff_max: float = 5e-3
    #: Consecutive timeouts at which ``on_connection_degraded`` fires —
    #: the gray-failure early-warning.  ``None`` derives it from
    #: ``max_consecutive_timeouts``.
    degraded_timeouts: Optional[int] = None
    #: Cap on buffered out-of-order frames per receive connection.
    reorder_buffer_frames: int = 256


@dataclass
class LtlStats:
    """Aggregate engine statistics."""

    messages_sent: int = 0
    messages_delivered: int = 0
    frames_sent: int = 0
    frames_received: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    nacks_sent: int = 0
    nacks_received: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    duplicates_dropped: int = 0
    rate_limited_drops: int = 0
    connections_failed: int = 0
    connections_recovered: int = 0
    corrupt_dropped: int = 0
    reconnect_probes: int = 0
    reorder_drops: int = 0
    #: Messages refused at the send side: deadline already expired when
    #: the sender handed them to the engine.
    deadline_expired_tx: int = 0
    #: Messages reassembled but not delivered to the role: the frame
    #: header's deadline had expired by delivery time.
    deadline_expired_rx: int = 0


class LtlEngine:
    """One FPGA's Lightweight Transport Layer endpoint."""

    def __init__(self, env: Environment, host_index: int,
                 transport: Optional[Any] = None,
                 config: Optional[LtlConfig] = None,
                 name: Optional[str] = None,
                 streams: Optional[RandomStreams] = None):
        self.env = env
        self.host_index = host_index
        self.transport = transport
        self.config = config or LtlConfig()
        self.name = name or f"ltl-{host_index}"
        self.stats = LtlStats()
        self.send_table = ConnectionTable()
        self.recv_table = ConnectionTable()
        self._message_ids = count()
        #: Called with (connection_id, payload, length_bytes) on delivery.
        self.on_message: Optional[
            Callable[[int, Any, int], None]] = None
        #: Called with (connection_id, remote_host) on connection failure.
        self.on_connection_failed: Optional[
            Callable[[int, int], None]] = None
        #: Called with (connection_id, remote_host) when a connection looks
        #: gray — repeated timeouts short of outright failure.
        self.on_connection_degraded: Optional[
            Callable[[int, int], None]] = None
        #: Called with (connection_id, remote_host) when a failed
        #: connection's reconnect probe is ACKed and traffic resumes.
        self.on_connection_recovered: Optional[
            Callable[[int, int], None]] = None
        self.limiter: Optional[BandwidthLimiter] = None
        if self.config.rate_limit_bps is not None:
            # Burst depth ~ 1 ms at the configured rate (min 4 frames),
            # so the limiter actually shapes sustained traffic.
            burst = max(4 * self.config.mtu_payload_bytes,
                        int(self.config.rate_limit_bps / 8 * 1e-3))
            # Anchor the bucket at *now* (an engine built mid-sim must
            # not credit itself the simulated past) and route the RED
            # draws through the seeded stream registry.
            dropper = RandomEarlyDropper(
                streams=streams or RandomStreams(seed=host_index),
                stream_name=f"{self.name}.red")
            self.limiter = BandwidthLimiter(self.config.rate_limit_bps,
                                            burst_bytes=burst,
                                            dropper=dropper,
                                            start_time=env.now)
        self._cnp = CnpGenerator(self.config.dcqcn)
        # Send-pump state machine (macro-event form of the old generator
        # parked on a Store; see _kick for the draw correspondence).
        self._pump_parked = False
        self._pump_stored = False
        self._pump_ready: List[SendConnectionState] = []
        self._pump_idx = 0
        self._pump_frame: Optional[Tuple[SendConnectionState,
                                         LtlFrame]] = None
        #: Set while the retransmit timer is parked with nothing unacked;
        #: :meth:`_transmit` reschedules the periodic scan.
        self._timer_parked = False
        self._nack_outstanding: Dict[int, int] = {}
        env.call_later(0.0, self._pump_cycle)
        env.call_later(0.0, self._timer_boot)

    # ------------------------------------------------------------------
    # Connection management (static allocation, per the paper)
    # ------------------------------------------------------------------
    def open_send_connection(self, remote_host: int,
                             remote_connection_id: int,
                             vc: int = 0) -> int:
        """Allocate a send-table entry toward a remote receive entry."""
        connection_id = self.send_table.allocate()
        state = SendConnectionState(
            connection_id=connection_id, remote_host=remote_host,
            remote_connection_id=remote_connection_id, vc=vc,
            dcqcn=DcqcnRateController(self.config.dcqcn))
        self.send_table.install(connection_id, state)
        return connection_id

    def open_receive_connection(self, remote_host: int,
                                remote_connection_id: int) -> int:
        """Allocate a receive-table entry for a remote sender."""
        connection_id = self.recv_table.allocate()
        state = ReceiveConnectionState(
            connection_id=connection_id, remote_host=remote_host,
            remote_connection_id=remote_connection_id)
        self.recv_table.install(connection_id, state)
        return connection_id

    def close_send_connection(self, connection_id: int) -> None:
        self.send_table.deallocate(connection_id)

    def close_receive_connection(self, connection_id: int) -> None:
        self.recv_table.deallocate(connection_id)
        # Drop NACK bookkeeping with the connection, or churned lease ids
        # accumulate here forever.
        self._nack_outstanding.pop(connection_id, None)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send_message(self, connection_id: int, payload: Any,
                     length_bytes: int, deadline: Any = None,
                     trace: Any = None) -> int:
        """Fragment and queue a message; returns its message id.

        ``deadline`` (a :class:`~repro.overload.deadline.Deadline` or an
        absolute expiry in seconds) rides in every DATA frame header.  A
        message whose deadline has *already* expired is refused here —
        before sequence numbers are assigned, so the go-back-N stream
        stays gapless — accounted in ``stats.deadline_expired_tx``, and
        ``-1`` is returned instead of a message id.

        ``trace`` (a :class:`~repro.trace.TraceContext`) rides every DATA
        frame as simulation metadata: ``ltl.tx`` is tapped at first
        transmit, ``ltl.rx`` at reassembled delivery, and retransmission
        wait is isolated into ``ltl.retx`` (see :meth:`_transmit`).
        """
        state: SendConnectionState = self.send_table.lookup(connection_id)
        if state.failed:
            raise RuntimeError(
                f"connection {connection_id} has failed; reprovision it")
        expires_at = expires_at_of(deadline)
        if expires_at is not None and self.env.now > expires_at:
            self.stats.deadline_expired_tx += 1
            return -1
        deadline_us = encode_deadline_us(expires_at)
        message_id = next(self._message_ids)
        mtu = self.config.mtu_payload_bytes
        total_fragments = max(1, -(-length_bytes // mtu))
        remaining = length_bytes
        for fragment in range(total_fragments):
            frag_bytes = min(mtu, remaining)
            remaining -= frag_bytes
            if isinstance(payload, (bytes, bytearray)):
                frag_payload = bytes(
                    payload[fragment * mtu: fragment * mtu + frag_bytes])
            else:
                # Opaque payload: carried whole on the first fragment.
                frag_payload = payload if fragment == 0 else b""
            frame = make_data_frame(
                connection_id=state.remote_connection_id,
                seq=state.next_seq, message_id=message_id,
                fragment=fragment, total_fragments=total_fragments,
                payload=frag_payload, payload_bytes=frag_bytes,
                deadline_us=deadline_us)
            frame.trace = trace
            state.next_seq += 1
            state.send_queue.append(frame)
        self.stats.messages_sent += 1
        self._kick()
        return message_id

    # The send pump used to be a generator parked on a one-slot Store.
    # It is now a chain of Deferred callbacks (macro-events): each frame
    # costs one scheduled entry instead of a Timeout plus a Process
    # resume, and each wake costs one entry instead of a StorePut +
    # StoreGet pair.  Eliminated entries were no-op pops; they are
    # compensated in ``events_processed`` so seeded counts stay
    # bit-identical with the old machine.
    def _kick(self) -> None:
        if self._pump_stored:
            return
        env = self.env
        if self._pump_parked:
            # Wake: one Deferred where the Store drew StorePut (no-op)
            # + StoreGet (resume) back to back.
            self._pump_parked = False
            env.events_processed += 1
            env.call_later(0.0, self._pump_cycle)
        else:
            # Pump mid-boot or mid-cycle: the Store stashed the kick (one
            # no-op StorePut event) and replayed it as a spurious wake at
            # the next park attempt.
            self._pump_stored = True
            env.events_processed += 1

    def _sendable(self) -> List[SendConnectionState]:
        return [
            state for state in self.send_table.values()
            if state.send_queue and not state.failed
            and state.in_flight < self.config.window_frames]

    def _pump_cycle(self) -> None:
        """Pump loop top: snapshot sendable connections or park."""
        ready = self._sendable()
        if not ready:
            if self._pump_stored:
                # Replay a stashed kick: the old machine's get() found
                # the stored item and immediately re-entered the loop.
                self._pump_stored = False
                self.env.call_later(0.0, self._pump_cycle)
            else:
                self._pump_parked = True
            return
        self._pump_ready = ready
        self._pump_idx = 0
        self._pump_advance()

    def _pump_advance(self) -> None:
        """Drain the snapshot from the current index, pacing by DC-QCN
        rate and the tx pipeline; one Deferred hop per frame."""
        cfg = self.config
        env = self.env
        ready = self._pump_ready
        idx = self._pump_idx
        while idx < len(ready):
            state = ready[idx]
            if not state.send_queue or \
                    state.in_flight >= cfg.window_frames:
                idx += 1
                continue
            frame = state.send_queue.pop(0)
            if self.limiter is not None and not self.limiter.admit(
                    frame.wire_bytes, env.now):
                # Random early drop at the tap: the frame is *not*
                # transmitted now; it returns to the queue head and is
                # retried after a pacing delay (the reliable layer
                # means intent is never lost, only delayed).
                state.send_queue.insert(0, frame)
                self.stats.rate_limited_drops += 1
                self._pump_idx = idx + 1
                env.call_later(
                    frame.wire_bytes * 8 / self.limiter.bucket.rate_bps,
                    self._pump_advance)
                return
            pacing = 0.0
            if cfg.congestion_control:
                state.dcqcn.on_increase_timer(env.now)
                rate = state.dcqcn.current_rate
                if rate < state.dcqcn.config.line_rate_bps:
                    pacing = frame.wire_bytes * 8 / rate
            self._pump_idx = idx + 1
            self._pump_frame = (state, frame)
            env.call_later(max(cfg.tx_latency, pacing), self._pump_tx)
            return
        self._pump_cycle()

    def _pump_tx(self) -> None:
        state, frame = self._pump_frame
        self._pump_frame = None
        self._transmit(state, frame, retransmission=False)
        self._pump_advance()

    def _transmit(self, state: SendConnectionState, frame: LtlFrame,
                  retransmission: bool) -> None:
        now = self.env.now
        if self._timer_parked:
            # Restart the periodic retransmit scan (one Deferred where
            # the old machine succeeded the park event and resumed the
            # timer process).
            self._timer_parked = False
            self.env.call_later(0.0, self._timer_wake)
        entry = state.unacked.get(frame.seq)
        trace = frame.trace
        if entry is None:
            entry = UnackedFrame(
                frame=frame, first_sent_at=now, last_sent_at=now)
            state.unacked[frame.seq] = entry
            if trace is not None:
                # First transmit: everything since the previous mark
                # (send-queue wait, tx pipeline, pacing) is LTL tx time.
                # Checkpoint the trail so a later retransmission can
                # erase the doomed traversal's downstream marks.  The
                # span is now in reliable custody: a downstream packet
                # drop is recoverable, so drop sites must not abandon it.
                trace.tap(_STAGE_LTL_TX, now)
                trace.protected = True
                entry.trace_checkpoint = trace.checkpoint()
        else:
            entry.last_sent_at = now
            entry.transmissions += 1
            if trace is not None:
                # Retransmission: discard the lost traversal's marks so
                # wire/switch hops are not double-counted, and attribute
                # the whole wait since the original transmit to the
                # retransmit bucket.
                trace.rewind(entry.trace_checkpoint)
                trace.tap(_STAGE_LTL_RETX, now)
        state.frames_sent += 1
        self.stats.frames_sent += 1
        if retransmission:
            state.retransmissions += 1
            self.stats.retransmissions += 1
        if self.transport is not None:
            self.transport.send_frame(state.remote_host, frame)

    # ------------------------------------------------------------------
    # Retransmission timer
    # ------------------------------------------------------------------
    @property
    def _degraded_threshold(self) -> int:
        cfg = self.config
        if cfg.degraded_timeouts is not None:
            return cfg.degraded_timeouts
        return max(2, cfg.max_consecutive_timeouts // 2)

    def _timer_has_work(self) -> bool:
        """True if any connection needs the periodic timer scan.

        A live connection needs it while frames are unacked; a failed one
        only if reconnect probing is enabled (otherwise its frames stay
        unacked forever and scanning them is pure overhead).
        """
        reconnect = self.config.reconnect
        for state in self.send_table.values():
            if state.unacked and (reconnect or not state.failed):
                return True
        return False

    def _timer_boot(self) -> None:
        """First scheduling decision of the retransmit timer."""
        if self._timer_has_work():
            self.env.call_later(self.config.timer_period, self._timer_tick)
        else:
            # Park until the next transmission instead of polling an
            # idle engine every timer_period — on quiet engines this
            # removes the dominant source of simulator events.
            self._timer_parked = True

    def _timer_wake(self) -> None:
        self.env.call_later(self.config.timer_period, self._timer_tick)

    def _timer_tick(self) -> None:
        """One timer-wheel scan pass (the old timer process's loop body)."""
        cfg = self.config
        now = self.env.now
        for state in list(self.send_table.values()):
            if state.failed:
                if cfg.reconnect and state.unacked \
                        and now >= state.reconnect_at:
                    self._probe(state, now)
                continue
            if not state.unacked:
                continue
            # Mild exponential backoff (capped at 4x): congestion-
            # induced ACK delay must not trigger a retransmission
            # storm, but failure detection must stay fast.
            backoff = cfg.retransmit_timeout * (
                1 << min(state.consecutive_timeouts, 2))
            if state.oldest_unacked_age(now) < backoff:
                continue
            self.stats.timeouts += 1
            state.consecutive_timeouts += 1
            if state.consecutive_timeouts > cfg.max_consecutive_timeouts:
                self._fail_connection(state)
                continue
            if state.consecutive_timeouts >= self._degraded_threshold \
                    and not state.degraded_reported:
                state.degraded_reported = True
                if self.on_connection_degraded is not None:
                    self.on_connection_degraded(
                        state.connection_id, state.remote_host)
            # Conservative go-back-one: resend only the oldest frame;
            # the cumulative ACK it elicits re-opens the window.
            oldest = next(iter(state.unacked.values()))
            self._transmit(state, oldest.frame, retransmission=True)
        if self._timer_has_work():
            self.env.call_later(cfg.timer_period, self._timer_tick)
        else:
            self._timer_parked = True

    def _probe(self, state: SendConnectionState, now: float) -> None:
        """Reconnect attempt: resend the oldest frame of a failed
        connection.  An ACK freeing frames un-fails it (see
        :meth:`_handle_ack`)."""
        state.reconnect_attempts += 1
        self.stats.reconnect_probes += 1
        backoff = min(
            self.config.reconnect_backoff
            * (1 << min(state.reconnect_attempts - 1, 8)),
            self.config.reconnect_backoff_max)
        state.reconnect_at = now + backoff
        oldest = next(iter(state.unacked.values()))
        self._transmit(state, oldest.frame, retransmission=True)

    def _fail_connection(self, state: SendConnectionState) -> None:
        state.failed = True
        state.reconnect_attempts = 0
        state.reconnect_at = self.env.now + self.config.reconnect_backoff
        self.stats.connections_failed += 1
        if self.on_connection_failed is not None:
            self.on_connection_failed(state.connection_id, state.remote_host)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive_frame(self, frame: LtlFrame, ecn_marked: bool = False,
                      src_host: Optional[int] = None) -> None:
        """Entry point from the transport (already past the MAC)."""
        if self.config.verify_checksums and not frame.verify_checksum():
            # Corrupt on the wire: drop silently.  The sender's NACK/
            # timeout machinery retransmits; no corrupt payload is ever
            # delivered to a role.
            self.stats.corrupt_dropped += 1
            return
        # One deferred callback per frame — the rx pipeline latency —
        # instead of a full process per frame.
        if frame.is_ack:
            self.env.call_later(
                self.config.ack_rx_latency, self._handle_ack, frame)
        elif frame.is_nack:
            self.env.call_later(
                self.config.rx_latency, self._handle_nack, frame)
        else:
            self.env.call_later(
                self.config.rx_latency, self._handle_data, frame, ecn_marked)

    def _handle_ack(self, frame: LtlFrame) -> None:
        self.stats.acks_received += 1
        try:
            state: SendConnectionState = self.send_table.lookup(
                frame.connection_id)
        except ConnectionError_:
            return  # stale ACK for a deallocated connection
        freed = state.apply_ack(frame.ack_seq, self.env.now)
        if state.failed and freed:
            # A reconnect probe got through: the peer is back.
            state.failed = False
            state.reconnect_attempts = 0
            state.reconnect_at = 0.0
            state.recoveries += 1
            self.stats.connections_recovered += 1
            if self.on_connection_recovered is not None:
                self.on_connection_recovered(
                    state.connection_id, state.remote_host)
        if frame.congestion_flag and self.config.congestion_control:
            state.dcqcn.on_cnp(self.env.now)
        self._kick()

    def _handle_nack(self, frame: LtlFrame) -> None:
        self.stats.nacks_received += 1
        try:
            state: SendConnectionState = self.send_table.lookup(
                frame.connection_id)
        except ConnectionError_:
            return
        lo, hi = nack_range(frame)
        for seq in range(lo, hi + 1):
            entry = state.unacked.get(seq)
            if entry is not None:
                self._transmit(state, entry.frame, retransmission=True)

    def _handle_data(self, frame: LtlFrame, ecn_marked: bool) -> None:
        self.stats.frames_received += 1
        try:
            state: ReceiveConnectionState = self.recv_table.lookup(
                frame.connection_id)
        except ConnectionError_:
            return
        state.frames_received += 1
        congestion = False
        if ecn_marked:
            congestion = self._cnp.on_marked_packet(
                frame.connection_id, self.env.now)

        if frame.seq < state.expected_seq:
            # Duplicate (a retransmission that raced the original ACK).
            state.duplicates += 1
            self.stats.duplicates_dropped += 1
            self._send_ack(state, congestion)
            return
        if frame.seq > state.expected_seq:
            # Reordering detected: buffer and NACK the gap once.  The
            # buffer is bounded like the hardware's SRAM store; overflow
            # frames are dropped and re-fetched by NACK/timeout.
            state.out_of_order += 1
            if len(state.reorder_buffer) < self.config.reorder_buffer_frames:
                state.reorder_buffer[frame.seq] = frame
            else:
                self.stats.reorder_drops += 1
            already = self._nack_outstanding.get(state.connection_id, -1)
            if already < state.expected_seq:
                self._nack_outstanding[state.connection_id] = frame.seq - 1
                nack = make_nack(state.remote_connection_id,
                                 (state.expected_seq, frame.seq - 1))
                state.nacks_sent += 1
                self.stats.nacks_sent += 1
                if self.transport is not None:
                    self.transport.send_frame(state.remote_host, nack)
            return

        # In-order: accept, then drain any buffered successors.
        self._accept_data(state, frame)
        while state.expected_seq in state.reorder_buffer:
            self._accept_data(
                state, state.reorder_buffer.pop(state.expected_seq))
        self._nack_outstanding.pop(state.connection_id, None)
        self._send_ack(state, congestion)

    def _accept_data(self, state: ReceiveConnectionState,
                     frame: LtlFrame) -> None:
        state.expected_seq = frame.seq + 1
        pending = state.reassembly.setdefault(
            frame.message_id, PendingMessage(
                total_fragments=frame.total_fragments))
        pending.fragments[frame.fragment] = (
            frame.payload, frame.payload_bytes)
        if pending.complete:
            del state.reassembly[frame.message_id]
            payload, total_bytes = pending.assemble()
            if frame.trace is not None:
                # Reassembled delivery: rx pipeline + reassembly wait.
                frame.trace.tap(_STAGE_LTL_RX, self.env.now)
            # Drop-and-account at the delivery point: the protocol still
            # ACKs the frames (the go-back-N stream must stay gapless),
            # but an expired message is not handed to the role — the
            # paper's "degrade statistically" applied end to end.
            expires_at = decode_deadline_us(frame.deadline_us)
            if expires_at is not None and self.env.now > expires_at:
                self.stats.deadline_expired_rx += 1
                if frame.trace is not None:
                    # The frames are ACKed but the message dies here:
                    # close the span so the recorder counts the drop.
                    frame.trace.abandon(self.env.now)
                return
            self.stats.messages_delivered += 1
            if self.on_message is not None:
                self.on_message(state.connection_id, payload, total_bytes)

    def _send_ack(self, state: ReceiveConnectionState,
                  congestion: bool) -> None:
        ack = make_ack(state.remote_connection_id,
                       state.expected_seq - 1, congestion=congestion)
        self.stats.acks_sent += 1
        if self.transport is not None:
            self.transport.send_frame(state.remote_host, ack)

    # ------------------------------------------------------------------
    def rtt_samples(self) -> List[float]:
        """All clean (non-retransmitted) RTT samples across connections."""
        samples: List[float] = []
        for state in self.send_table.values():
            samples.extend(state.rtt_samples)
        return samples


def connect_pair(a: LtlEngine, b: LtlEngine,
                 vc: int = 0) -> Tuple[int, int]:
    """Set up a bidirectional connection between two engines.

    Returns ``(conn_at_a, conn_at_b)`` — each engine's *send* connection id
    toward the other.  (Static control-plane setup; the paper's connections
    are statically allocated and persistent, so establishment cost is not
    modeled.)
    """
    recv_at_b = b.recv_table.allocate()
    send_at_a = a.open_send_connection(b.host_index, recv_at_b, vc=vc)
    b.recv_table.install(recv_at_b, ReceiveConnectionState(
        connection_id=recv_at_b, remote_host=a.host_index,
        remote_connection_id=send_at_a))

    recv_at_a = a.recv_table.allocate()
    send_at_b = b.open_send_connection(a.host_index, recv_at_a, vc=vc)
    a.recv_table.install(recv_at_a, ReceiveConnectionState(
        connection_id=recv_at_a, remote_host=b.host_index,
        remote_connection_id=send_at_b))
    return send_at_a, send_at_b
