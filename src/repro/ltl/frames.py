"""LTL frame format.

LTL (Lightweight Transport Layer) frames ride inside UDP datagrams (the
protocol "uses UDP for frame encapsulation and IP for routing packets
across the datacenter network").  A frame is either DATA (a fragment of a
message on a connection), ACK (cumulative acknowledgement, optionally
carrying a DC-QCN congestion-notification flag), or NACK (a request for
timely retransmission of specific sequence numbers after reordering was
detected).

The header serializes to real bytes so tests can round-trip frames through
the wire representation.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Optional, Tuple

#: UDP destination port LTL engines listen on.
LTL_UDP_PORT = 51000

MAGIC = 0x17E5

# Frame types.
TYPE_DATA = 1
TYPE_ACK = 2
TYPE_NACK = 3

# Flags.
FLAG_FIRST_FRAG = 1 << 0
FLAG_LAST_FRAG = 1 << 1
FLAG_CONGESTION = 1 << 2  # DC-QCN CNP piggybacked on an ACK

_HEADER_FMT = "!HBBIIIHHHIII"
#: Size of the LTL header on the wire.
LTL_HEADER_BYTES = struct.calcsize(_HEADER_FMT)

# Payload encodings in the full-frame wire format (``to_wire``).  The
# encoded payload rides behind the header as ``!BI`` (encoding tag,
# encoded length) followed by the encoded bytes.  ``payload_bytes`` in
# the header remains the *simulated* wire size, which for opaque
# payloads differs from the encoded length.
_ENC_RAW = 0      # payload is bytes: carried verbatim
_ENC_PICKLE = 1   # opaque payload object: pickled for the shard seam
_TRAILER_FMT = "!BI"
_TRAILER_BYTES = struct.calcsize(_TRAILER_FMT)


@dataclass
class LtlFrame:
    """One LTL protocol data unit.

    ``payload`` may be bytes or an opaque object; ``payload_bytes`` is the
    authoritative size (consistent with :class:`repro.net.packet.Packet`).
    """

    frame_type: int
    connection_id: int
    seq: int = 0
    message_id: int = 0
    fragment: int = 0
    total_fragments: int = 1
    flags: int = 0
    ack_seq: int = 0
    #: Absolute deadline of the carried message in microseconds of sim
    #: time (see :mod:`repro.overload.deadline`); 0 means "no deadline".
    deadline_us: int = 0
    payload: Any = b""
    payload_bytes: int = 0
    #: CRC-32 sealing header + payload; auto-computed when left ``None``.
    checksum: Optional[int] = None
    #: Optional :class:`repro.trace.TraceContext` riding the frame.
    #: Simulation-side metadata only: not serialized, not covered by the
    #: checksum, dropped by ``header_from_bytes`` round-trips.
    trace: Any = None

    def __post_init__(self) -> None:
        if self.payload_bytes == 0 and isinstance(
                self.payload, (bytes, bytearray)):
            self.payload_bytes = len(self.payload)
        if self.checksum is None:
            self.checksum = self.compute_checksum()

    # -- convenience ----------------------------------------------------
    @property
    def is_data(self) -> bool:
        return self.frame_type == TYPE_DATA

    @property
    def is_ack(self) -> bool:
        return self.frame_type == TYPE_ACK

    @property
    def is_nack(self) -> bool:
        return self.frame_type == TYPE_NACK

    @property
    def is_first_fragment(self) -> bool:
        return bool(self.flags & FLAG_FIRST_FRAG)

    @property
    def is_last_fragment(self) -> bool:
        return bool(self.flags & FLAG_LAST_FRAG)

    @property
    def congestion_flag(self) -> bool:
        return bool(self.flags & FLAG_CONGESTION)

    @property
    def wire_bytes(self) -> int:
        """Frame size carried as UDP payload."""
        return LTL_HEADER_BYTES + self.payload_bytes

    # -- integrity --------------------------------------------------------
    def compute_checksum(self) -> int:
        """CRC-32 over the header (checksum field zeroed) plus the payload.

        Opaque (non-bytes) payloads ride by reference in the simulation,
        so they are covered through their wire length in the header only.
        """
        head = struct.pack(
            _HEADER_FMT, MAGIC, self.frame_type, self.flags,
            self.connection_id, self.seq, self.message_id, self.fragment,
            self.total_fragments, self.payload_bytes & 0xFFFF,
            self.ack_seq, self.deadline_us & 0xFFFFFFFF, 0)
        crc = zlib.crc32(head)
        if isinstance(self.payload, (bytes, bytearray)):
            crc = zlib.crc32(bytes(self.payload), crc)
        return crc & 0xFFFFFFFF

    def verify_checksum(self) -> bool:
        return self.checksum == self.compute_checksum()

    # -- serialization ----------------------------------------------------
    def header_to_bytes(self) -> bytes:
        return struct.pack(
            _HEADER_FMT, MAGIC, self.frame_type, self.flags,
            self.connection_id, self.seq, self.message_id, self.fragment,
            self.total_fragments, self.payload_bytes & 0xFFFF, self.ack_seq,
            self.deadline_us & 0xFFFFFFFF,
            (self.checksum or 0) & 0xFFFFFFFF)

    @classmethod
    def header_from_bytes(cls, raw: bytes) -> "LtlFrame":
        if len(raw) < LTL_HEADER_BYTES:
            raise ValueError("truncated LTL header")
        (magic, frame_type, flags, connection_id, seq, message_id, fragment,
         total_fragments, payload_bytes, ack_seq, deadline_us,
         checksum) = struct.unpack(_HEADER_FMT, raw[:LTL_HEADER_BYTES])
        if magic != MAGIC:
            raise ValueError(f"bad LTL magic: {magic:#x}")
        return cls(frame_type=frame_type, flags=flags,
                   connection_id=connection_id, seq=seq,
                   message_id=message_id, fragment=fragment,
                   total_fragments=total_fragments,
                   payload=b"", payload_bytes=payload_bytes,
                   ack_seq=ack_seq, deadline_us=deadline_us,
                   checksum=checksum)

    def to_wire(self) -> bytes:
        """Serialize the full frame — header *and* payload — to bytes.

        Bytes payloads are carried verbatim.  Opaque payload objects
        (DNN requests, shell messages) are pickled so a frame can cross
        a process boundary — the shard driver ships boundary frames
        between shard workers in this form.  ``trace`` is simulation
        metadata and is intentionally dropped (per-hop attribution does
        not follow a frame across the shard seam).
        """
        if isinstance(self.payload, (bytes, bytearray)):
            enc, blob = _ENC_RAW, bytes(self.payload)
        else:
            enc, blob = _ENC_PICKLE, pickle.dumps(
                self.payload, protocol=pickle.HIGHEST_PROTOCOL)
        return self.header_to_bytes() + \
            struct.pack(_TRAILER_FMT, enc, len(blob)) + blob

    @classmethod
    def from_wire(cls, raw: bytes) -> "LtlFrame":
        """Reconstruct a frame serialized by :meth:`to_wire`.

        The checksum is verified: bytes payloads are covered in full,
        opaque payloads through their simulated wire length only (the
        same coverage :meth:`compute_checksum` applied at build time).
        """
        frame = cls.header_from_bytes(raw)
        body = raw[LTL_HEADER_BYTES:]
        if len(body) < _TRAILER_BYTES:
            raise ValueError("truncated LTL payload trailer")
        enc, length = struct.unpack(_TRAILER_FMT, body[:_TRAILER_BYTES])
        blob = body[_TRAILER_BYTES:_TRAILER_BYTES + length]
        if len(blob) != length:
            raise ValueError("truncated LTL payload")
        if enc == _ENC_RAW:
            frame.payload = blob
        elif enc == _ENC_PICKLE:
            frame.payload = pickle.loads(blob)
        else:
            raise ValueError(f"unknown LTL payload encoding {enc}")
        if not frame.verify_checksum():
            raise ValueError("LTL frame checksum mismatch")
        return frame


def make_data_frame(connection_id: int, seq: int, message_id: int,
                    fragment: int, total_fragments: int, payload: Any,
                    payload_bytes: int, deadline_us: int = 0) -> LtlFrame:
    """Build a DATA frame with first/last-fragment flags set correctly."""
    flags = 0
    if fragment == 0:
        flags |= FLAG_FIRST_FRAG
    if fragment == total_fragments - 1:
        flags |= FLAG_LAST_FRAG
    return LtlFrame(frame_type=TYPE_DATA, connection_id=connection_id,
                    seq=seq, message_id=message_id, fragment=fragment,
                    total_fragments=total_fragments, flags=flags,
                    deadline_us=deadline_us,
                    payload=payload, payload_bytes=payload_bytes)


def make_ack(connection_id: int, ack_seq: int,
             congestion: bool = False) -> LtlFrame:
    """Cumulative ACK up to and including ``ack_seq``."""
    flags = FLAG_CONGESTION if congestion else 0
    return LtlFrame(frame_type=TYPE_ACK, connection_id=connection_id,
                    flags=flags, ack_seq=ack_seq)


def make_nack(connection_id: int, missing: Tuple[int, int]) -> LtlFrame:
    """NACK requesting retransmission of seqs in ``[missing[0], missing[1]]``.

    The missing range rides in the payload as two packed u32s.
    """
    lo, hi = missing
    payload = struct.pack("!II", lo, hi)
    return LtlFrame(frame_type=TYPE_NACK, connection_id=connection_id,
                    payload=payload, payload_bytes=len(payload))


def nack_range(frame: LtlFrame) -> Tuple[int, int]:
    """Decode the missing-seq range from a NACK frame."""
    if not frame.is_nack:
        raise ValueError("not a NACK frame")
    return struct.unpack("!II", frame.payload[:8])
