"""Lightweight Transport Layer: reliable inter-FPGA messaging (paper §V-A).

LTL gives every FPGA in the datacenter a microsecond-scale, mostly
lossless, ordered channel to every other FPGA, riding the standard
Ethernet in a PFC-protected traffic class with DC-QCN congestion control.
"""

from .connection import (
    ConnectionError_,
    ConnectionTable,
    PendingMessage,
    ReceiveConnectionState,
    SendConnectionState,
    UnackedFrame,
)
from .engine import LtlConfig, LtlEngine, LtlStats, connect_pair
from .frames import (
    LTL_HEADER_BYTES,
    LTL_UDP_PORT,
    TYPE_ACK,
    TYPE_DATA,
    TYPE_NACK,
    LtlFrame,
    make_ack,
    make_data_frame,
    make_nack,
    nack_range,
)
from .ratelimit import (BandwidthLimiter, RandomEarlyDropper, RedConfig,
                        TokenBucket)
from .transports import DirectTransport, FaultModel

__all__ = [
    "BandwidthLimiter",
    "ConnectionError_",
    "ConnectionTable",
    "DirectTransport",
    "FaultModel",
    "LTL_HEADER_BYTES",
    "LTL_UDP_PORT",
    "LtlConfig",
    "LtlEngine",
    "LtlFrame",
    "LtlStats",
    "PendingMessage",
    "RandomEarlyDropper",
    "ReceiveConnectionState",
    "RedConfig",
    "SendConnectionState",
    "TYPE_ACK",
    "TYPE_DATA",
    "TYPE_NACK",
    "TokenBucket",
    "UnackedFrame",
    "connect_pair",
    "make_ack",
    "make_data_frame",
    "make_nack",
    "nack_range",
]
