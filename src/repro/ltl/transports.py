"""Pluggable transports for the LTL engine.

The production transport is the FPGA shell's 40G MAC into the datacenter
fabric (:class:`repro.fpga.shell.Shell` provides it).  This module supplies
lightweight transports for unit tests and protocol studies:

* :class:`DirectTransport` — fixed-delay delivery between registered
  engines, with optional fault injection (drop / reorder / duplicate),
  exercising exactly the failure modes LTL's ACK/NACK machinery exists
  to mask.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import Environment
from .engine import LtlEngine
from .frames import LtlFrame


@dataclass
class FaultModel:
    """Probabilities of per-frame transport faults."""

    drop_probability: float = 0.0
    reorder_probability: float = 0.0
    duplicate_probability: float = 0.0
    #: Extra delay applied to a reordered frame.
    reorder_delay: float = 5e-6

    def __post_init__(self) -> None:
        for name in ("drop_probability", "reorder_probability",
                     "duplicate_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")


class DirectTransport:
    """Point-to-point delivery between engines with fault injection."""

    def __init__(self, env: Environment, delay: float = 1e-6,
                 faults: Optional[FaultModel] = None,
                 rng: Optional[random.Random] = None):
        self.env = env
        self.delay = delay
        self.faults = faults or FaultModel()
        self.rng = rng or random.Random(0)
        self._engines: Dict[int, LtlEngine] = {}
        self.frames_in_flight = 0
        self.frames_dropped = 0
        self.frames_reordered = 0
        self.frames_duplicated = 0

    def register(self, engine: LtlEngine) -> None:
        """Attach an engine; its ``host_index`` becomes its address."""
        if engine.host_index in self._engines:
            raise ValueError(f"host {engine.host_index} already registered")
        self._engines[engine.host_index] = engine
        engine.transport = self

    def send_frame(self, dst_host: int, frame: LtlFrame) -> None:
        if self.rng.random() < self.faults.drop_probability:
            self.frames_dropped += 1
            return
        delay = self.delay
        if self.rng.random() < self.faults.reorder_probability:
            self.frames_reordered += 1
            delay += self.faults.reorder_delay
        self._schedule(dst_host, frame, delay)
        if self.rng.random() < self.faults.duplicate_probability:
            self.frames_duplicated += 1
            self._schedule(dst_host, frame, delay + self.delay)

    def _schedule(self, dst_host: int, frame: LtlFrame,
                  delay: float) -> None:
        engine = self._engines.get(dst_host)
        if engine is None:
            return  # destination died: frames silently vanish
        self.frames_in_flight += 1
        self.env.call_later(delay, self._deliver, engine, frame)

    def _deliver(self, engine: LtlEngine, frame: LtlFrame) -> None:
        self.frames_in_flight -= 1
        engine.receive_frame(frame)
