"""Bandwidth limiting for LTL roles.

"To prevent issues, LTL implements bandwidth limiting to prevent the FPGA
from exceeding a configurable bandwidth limit" and the network tap performs
"bandwidth limiting via random early drops".

:class:`TokenBucket` is the pacing primitive; :class:`RandomEarlyDropper`
converts sustained over-limit pressure into an increasing drop
probability, so a misbehaving role degrades statistically rather than
head-of-line blocking the bump-in-the-wire datapath.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class TokenBucket:
    """Classic token bucket: ``rate_bps`` refill, ``burst_bytes`` depth."""

    def __init__(self, rate_bps: float, burst_bytes: int):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                self.burst_bytes,
                self._tokens + elapsed * self.rate_bps / 8.0)
            self._last_refill = now

    def try_consume(self, nbytes: int, now: float) -> bool:
        """Take ``nbytes`` of credit if available; False otherwise."""
        self._refill(now)
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            return True
        return False

    def fill_fraction(self, now: float) -> float:
        """Current fill level in [0, 1] (1 = completely idle)."""
        self._refill(now)
        return self._tokens / self.burst_bytes


@dataclass
class RedConfig:
    """Random-early-drop ramp on bucket *emptiness*.

    Dropping starts once the bucket falls below ``start_fraction`` fill and
    reaches ``max_drop_probability`` at empty.
    """

    start_fraction: float = 0.5
    max_drop_probability: float = 1.0

    def drop_probability(self, fill_fraction: float) -> float:
        if fill_fraction >= self.start_fraction:
            return 0.0
        depletion = 1.0 - fill_fraction / self.start_fraction
        return self.max_drop_probability * depletion


class BandwidthLimiter:
    """Token bucket + random early drops, as the LTL tap implements.

    ``admit`` returns whether the frame may enter the network: frames
    within the configured bandwidth always pass; beyond it they are dropped
    with probability growing as the bucket drains.
    """

    def __init__(self, rate_bps: float, burst_bytes: int = 256 * 1024,
                 red: RedConfig | None = None,
                 rng: random.Random | None = None):
        self.bucket = TokenBucket(rate_bps, burst_bytes)
        self.red = red or RedConfig()
        self.rng = rng or random.Random(0)
        self.admitted = 0
        self.dropped = 0

    def admit(self, nbytes: int, now: float) -> bool:
        fill = self.bucket.fill_fraction(now)
        if self.rng.random() < self.red.drop_probability(fill):
            self.dropped += 1
            return False
        if self.bucket.try_consume(nbytes, now):
            self.admitted += 1
            return True
        self.dropped += 1
        return False
