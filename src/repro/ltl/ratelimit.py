"""Bandwidth limiting for LTL roles.

"To prevent issues, LTL implements bandwidth limiting to prevent the FPGA
from exceeding a configurable bandwidth limit" and the network tap performs
"bandwidth limiting via random early drops".

:class:`TokenBucket` is the pacing primitive; :class:`RandomEarlyDropper`
converts sustained over-limit pressure into an increasing drop
probability, so a misbehaving role degrades statistically rather than
head-of-line blocking the bump-in-the-wire datapath.  The dropper draws
from a named :class:`~repro.sim.randomness.RandomStreams` stream so a
seeded cloud replays its drop pattern bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..sim.randomness import RandomStreams


class TokenBucket:
    """Classic token bucket: ``rate_bps`` refill, ``burst_bytes`` depth.

    ``start_time`` anchors the refill clock.  A bucket created mid-
    simulation used to anchor at 0.0 and so credited itself the entire
    simulated past on first use — harmless for a bucket that starts
    full, but silently wrong for one that starts partially drained.
    """

    def __init__(self, rate_bps: float, burst_bytes: int,
                 start_time: float = 0.0,
                 initial_tokens: Optional[float] = None):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        if initial_tokens is None:
            initial_tokens = float(burst_bytes)
        if not 0.0 <= initial_tokens <= burst_bytes:
            raise ValueError("initial_tokens must be in [0, burst_bytes]")
        self._tokens = float(initial_tokens)
        self._last_refill = start_time

    def _refill(self, now: float) -> None:
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                self.burst_bytes,
                self._tokens + elapsed * self.rate_bps / 8.0)
            self._last_refill = now

    def try_consume(self, nbytes: int, now: float) -> bool:
        """Take ``nbytes`` of credit if available; False otherwise."""
        self._refill(now)
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            return True
        return False

    def fill_fraction(self, now: float) -> float:
        """Current fill level in [0, 1] (1 = completely idle)."""
        self._refill(now)
        return self._tokens / self.burst_bytes


@dataclass
class RedConfig:
    """Random-early-drop ramp on bucket *emptiness*.

    Dropping starts once the bucket falls below ``start_fraction`` fill and
    reaches ``max_drop_probability`` at empty.
    """

    start_fraction: float = 0.5
    max_drop_probability: float = 1.0

    def drop_probability(self, fill_fraction: float) -> float:
        if fill_fraction >= self.start_fraction:
            return 0.0
        depletion = 1.0 - fill_fraction / self.start_fraction
        return self.max_drop_probability * depletion


class RandomEarlyDropper:
    """The RED decision: *should this frame drop, given bucket fill?*

    Draws come from a :class:`RandomStreams` child stream (default name
    ``"ltl.red"``) rather than an ad-hoc ``random.Random``: RED is the
    one stochastic element of the LTL datapath, and routing it through
    the simulation's seeded stream registry keeps whole-cloud replays
    deterministic no matter how many frames other components draw for.
    A stream is only consumed while the ramp is actually nonzero, so an
    idle (never-over-limit) limiter consumes no randomness at all.
    """

    def __init__(self, config: Optional[RedConfig] = None,
                 rng: Optional[random.Random] = None,
                 streams: Optional[RandomStreams] = None,
                 stream_name: str = "ltl.red"):
        self.config = config or RedConfig()
        if rng is None:
            rng = (streams or RandomStreams(seed=0)).stream(stream_name)
        self.rng = rng
        self.drops = 0
        self.passes = 0

    def should_drop(self, fill_fraction: float) -> bool:
        probability = self.config.drop_probability(fill_fraction)
        if probability > 0.0 and self.rng.random() < probability:
            self.drops += 1
            return True
        self.passes += 1
        return False


class BandwidthLimiter:
    """Token bucket + random early drops, as the LTL tap implements.

    ``admit`` returns whether the frame may enter the network: frames
    within the configured bandwidth always pass; beyond it they are dropped
    with probability growing as the bucket drains.
    """

    def __init__(self, rate_bps: float, burst_bytes: int = 256 * 1024,
                 red: Optional[RedConfig] = None,
                 rng: Optional[random.Random] = None,
                 dropper: Optional[RandomEarlyDropper] = None,
                 start_time: float = 0.0):
        self.bucket = TokenBucket(rate_bps, burst_bytes,
                                  start_time=start_time)
        if dropper is None:
            dropper = RandomEarlyDropper(config=red, rng=rng)
        elif red is not None or rng is not None:
            raise ValueError("pass either dropper or red/rng, not both")
        self.dropper = dropper
        self.admitted = 0
        self.dropped = 0

    @property
    def red(self) -> RedConfig:
        return self.dropper.config

    @property
    def rng(self) -> random.Random:
        return self.dropper.rng

    def admit(self, nbytes: int, now: float) -> bool:
        fill = self.bucket.fill_fraction(now)
        if self.dropper.should_drop(fill):
            self.dropped += 1
            return False
        if self.bucket.try_consume(nbytes, now):
            self.admitted += 1
            return True
        self.dropped += 1
        return False
