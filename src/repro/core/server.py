"""A production server: host CPU + NIC behind a bump-in-the-wire FPGA."""

from __future__ import annotations

from typing import Callable, List, Optional

from ..fpga.shell import Shell, ShellConfig
from ..net.fabric import DatacenterFabric
from ..net.packet import Packet
from ..sim import Environment, RandomStreams, Resource


class Server:
    """One server of the Configurable Cloud.

    The host's NIC is cabled to the FPGA, the FPGA to the TOR: all
    network traffic crosses the shell's bridge.  ``cores`` models the
    host CPU for experiments that co-schedule software work.
    """

    def __init__(self, env: Environment, host_index: int,
                 fabric: DatacenterFabric,
                 shell_config: Optional[ShellConfig] = None,
                 num_cores: int = 8,
                 streams: Optional[RandomStreams] = None):
        self.env = env
        self.host_index = host_index
        self.shell = Shell(env, host_index, fabric, config=shell_config,
                           streams=streams)
        self.shell.nic_receive = self._nic_receive
        self.cores = Resource(env, capacity=num_cores)
        self._nic_handlers: List[Callable[[Packet], None]] = []
        self.packets_received = 0
        self.packets_sent = 0

    # ------------------------------------------------------------------
    # Host networking (through the FPGA)
    # ------------------------------------------------------------------
    def nic_send(self, packet: Packet) -> None:
        """Host transmits a packet (it enters the FPGA's NIC port)."""
        self.packets_sent += 1
        self.shell.send_from_nic(packet)

    def send_to(self, dst_index: int, payload, payload_bytes: int = -1,
                src_port: int = 0, dst_port: int = 0) -> None:
        """Convenience: build + transmit a UDP packet to another host."""
        packet = self.shell.attachment.make_packet(
            dst_index, payload, payload_bytes=payload_bytes,
            src_port=src_port, dst_port=dst_port)
        self.nic_send(packet)

    def on_packet(self, handler: Callable[[Packet], None]) -> None:
        """Register a host-side packet handler (the NIC's consumer)."""
        self._nic_handlers.append(handler)

    def _nic_receive(self, packet: Packet) -> None:
        self.packets_received += 1
        for handler in self._nic_handlers:
            handler(packet)

    # ------------------------------------------------------------------
    @property
    def fpga(self) -> Shell:
        """The server's FPGA shell (alias for discoverability)."""
        return self.shell
