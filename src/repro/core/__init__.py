"""Core facade: the Configurable Cloud itself."""

from .cloud import ConfigurableCloud
from .metrics import LatencyRecorder, ThroughputMeter, normalize
from .server import Server
from .service import HardwareService

__all__ = [
    "ConfigurableCloud",
    "HardwareService",
    "LatencyRecorder",
    "Server",
    "ThroughputMeter",
    "normalize",
]
