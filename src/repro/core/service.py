"""HardwareService: ganging pooled FPGAs into a callable service.

The paper's remote-acceleration story end to end: a Service Manager
leases FPGAs from the Resource Manager, deploys a role image, the
client's FPGA opens LTL connections to every member, requests are
load-balanced across the pool, and LTL's fast failure detection feeds
back into HaaS so failed members are replaced and reconnected — "failing
nodes are removed from the pool with replacements quickly added."
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..fpga.reconfig import Image
from ..haas.constraints import Constraints
from ..haas.service_manager import ServiceManager
from .cloud import ConfigurableCloud
from .server import Server


class HardwareService:
    """A remotely-callable hardware service on the global FPGA pool."""

    def __init__(self, cloud: ConfigurableCloud, name: str, image: Image,
                 constraints: Optional[Constraints] = None,
                 components: int = 1):
        self.cloud = cloud
        self.name = name
        self.sm = ServiceManager(cloud.env, name, cloud.resource_manager,
                                 image, constraints)
        self.sm.on_component_replaced = self._on_replacement
        self.sm.grow(components)
        self._clients: Dict[int, Server] = {}
        self.requests_sent = 0
        self.failovers = 0
        self.gray_reports = 0

    # ------------------------------------------------------------------
    @property
    def hosts(self):
        """FPGAs currently serving this service."""
        return self.sm.hosts

    def set_handler(self, handler: Callable[[Any, int], None],
                    role: int = 0) -> None:
        """Install the role's request handler on every serving FPGA.

        (Also re-applied to replacements on failover.)
        """
        self._handler = (handler, role)
        for host in self.hosts:
            self.cloud.shell(host).set_role_handler(role, handler)

    # ------------------------------------------------------------------
    def attach_client(self, server: Server) -> None:
        """Connect a client server's FPGA to every service member and
        arm fast failure detection."""
        self._clients[server.host_index] = server
        for host in self.hosts:
            self.cloud.connect(server.host_index, host)
        server.shell.on_remote_failure = lambda host: \
            self._on_remote_failure(server, host)
        server.shell.on_remote_degraded = self._on_remote_degraded

    def request(self, client: Server, payload: Any,
                length_bytes: int, role: int = 0) -> int:
        """Send one request from ``client`` to the next pool member.

        Returns the host index the request was dispatched to.
        """
        if client.host_index not in self._clients:
            raise RuntimeError("attach_client() before request()")
        host = self.sm.pick()
        lease = self.sm.lease_of(host)
        if lease is not None:
            manager = self.cloud.resource_manager.manager(host)
            if not manager.admit_traffic(lease.fence):
                # Our lease on this host was superseded (we may be the
                # stale side of a split brain): drop the member rather
                # than send traffic into someone else's allocation.
                raise RuntimeError(
                    f"service {self.name!r} lease on host {host} is "
                    f"fenced off (stale fence {lease.fence})")
        self.cloud.connect(client.host_index, host)  # idempotent
        client.shell.remote_send(host, payload, length_bytes,
                                 dst_role=role)
        self.requests_sent += 1
        return host

    # ------------------------------------------------------------------
    def _on_remote_failure(self, client: Server, failed_host: int) -> None:
        """A client's LTL declared a member dead: feed HaaS, reconnect."""
        self.failovers += 1
        rm = self.cloud.resource_manager
        try:
            manager = rm.manager(failed_host)
        except KeyError:
            return
        if manager.health.value != "failed":
            # Soft declaration: the FM monitor rehabilitates the node if
            # the cause turns out to be transient (flap, gray episode);
            # the RM quarantine keeps it benched meanwhile.
            manager.mark_failed(
                f"LTL timeouts reported by client {client.host_index}",
                hard=False)  # triggers SM replacement via RM
        self._sync_members()

    def _on_remote_degraded(self, suspect_host: int) -> None:
        """A client's LTL saw repeated timeouts: report the member gray."""
        self.gray_reports += 1
        try:
            manager = self.cloud.resource_manager.manager(suspect_host)
        except KeyError:
            return
        manager.report_gray()

    def _on_replacement(self, _lease) -> None:
        """SM re-acquired a lost component (possibly after retries)."""
        self._sync_members()

    def _sync_members(self) -> None:
        """Re-install the handler on any replacement members and connect
        existing clients to them."""
        handler = getattr(self, "_handler", None)
        for host in self.hosts:
            if handler is not None:
                self.cloud.shell(host).set_role_handler(
                    handler[1], handler[0])
            for attached in self._clients.values():
                self.cloud.connect(attached.host_index, host)
