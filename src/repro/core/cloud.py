"""The Configurable Cloud facade — the paper's primary contribution.

:class:`ConfigurableCloud` assembles the whole system: a shared
datacenter Ethernet, servers whose FPGAs sit between NIC and TOR, LTL
connectivity between any pair of FPGAs, and the HaaS control plane
managing the FPGAs as a global pool.

Quickstart::

    from repro import ConfigurableCloud

    cloud = ConfigurableCloud(seed=42)
    a = cloud.add_server(0)
    b = cloud.add_server(1)
    cloud.connect(0, 1)                       # persistent LTL connection
    rtts = cloud.measure_ltl_rtt(0, 1, messages=100)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..fpga.shell import Shell, ShellConfig
from ..haas.fpga_manager import FpgaManager
from ..haas.resource_manager import ResourceManager
from ..net.fabric import DatacenterFabric
from ..net.topology import TopologyConfig
from ..sim import Environment, RandomStreams
from .server import Server


class ConfigurableCloud:
    """Facade wiring fabric + servers + shells + HaaS together."""

    def __init__(self, env: Optional[Environment] = None,
                 topology: Optional[TopologyConfig] = None,
                 seed: int = 0):
        # Explicit None check: Environment defines __len__ (scheduled
        # entries), so a freshly created — hence empty — env is *falsy*
        # and ``env or Environment()`` would silently discard it.
        self.env = env if env is not None else Environment()
        self.streams = RandomStreams(seed=seed)
        self.fabric = DatacenterFabric(self.env, topology, self.streams)
        self.servers: Dict[int, Server] = {}
        self._rm: Optional[ResourceManager] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_server(self, host_index: int,
                   shell_config: Optional[ShellConfig] = None,
                   num_cores: int = 8, enroll: bool = True) -> Server:
        """Create a server at ``host_index`` and (optionally) enroll its
        FPGA into the HaaS pool."""
        if host_index in self.servers:
            raise ValueError(f"server {host_index} already exists")
        server = Server(
            self.env, host_index, self.fabric, shell_config=shell_config,
            num_cores=num_cores,
            streams=self.streams.spawn(f"server-{host_index}"))
        self.servers[host_index] = server
        if enroll:
            self.resource_manager.register(
                FpgaManager(self.env, server.shell))
        return server

    def add_servers(self, host_indices: List[int], **kwargs) -> List[Server]:
        return [self.add_server(i, **kwargs) for i in host_indices]

    def server(self, host_index: int) -> Server:
        return self.servers[host_index]

    def shell(self, host_index: int) -> Shell:
        return self.servers[host_index].shell

    # ------------------------------------------------------------------
    # HaaS
    # ------------------------------------------------------------------
    @property
    def resource_manager(self) -> ResourceManager:
        """The datacenter's (lazily created) Resource Manager."""
        if self._rm is None:
            self._rm = ResourceManager(self.env, self.fabric.topology)
        return self._rm

    # ------------------------------------------------------------------
    # Inter-FPGA communication
    # ------------------------------------------------------------------
    def connect(self, a: int, b: int, vc: int = 0) -> None:
        """Establish a persistent LTL connection between two servers'
        FPGAs."""
        self.shell(a).connect_to(self.shell(b), vc=vc)

    def measure_ltl_rtt(self, a: int, b: int, messages: int = 100,
                        payload_bytes: int = 64,
                        gap_seconds: float = 100e-6) -> List[float]:
        """Idle round-trip latency samples between two FPGAs.

        Measured as the paper does: "from the moment the header of a
        packet is generated in LTL until the corresponding ACK for that
        packet is received in LTL", at a very low rate.
        """
        self.connect(a, b)
        shell_a = self.shell(a)
        before = len(shell_a.ltl.rtt_samples())

        def driver(env):
            for _ in range(messages):
                shell_a.remote_send(b, b"\x00" * payload_bytes,
                                    payload_bytes)
                yield env.timeout(gap_seconds)

        self.env.process(driver(self.env), name=f"rtt-{a}-{b}")
        self.env.run(until=self.env.now + messages * gap_seconds + 5e-3)
        return shell_a.ltl.rtt_samples()[before:]

    # ------------------------------------------------------------------
    def run(self, until=None):
        """Advance the simulation (delegates to the environment)."""
        return self.env.run(until=until)
