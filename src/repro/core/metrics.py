"""Latency/throughput measurement helpers used by every experiment.

The measurement harness has to stay cheap relative to the modeled path:
microsecond-scale RPC claims can't be reproduced if the recorder itself
dominates the profile.  :class:`LatencyRecorder` therefore keeps a cached
sorted view (one sort per burst of queries, instead of one sort *per
percentile*), and :class:`StreamingQuantile` offers a constant-memory P²
estimator for soaks too long to retain every sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim.randomness import percentile


class StreamingQuantile:
    """Constant-memory quantile estimate via the P² algorithm.

    Jain & Chlamtac's P² (piecewise-parabolic) estimator tracks five
    markers whose heights converge on the ``q``-quantile without storing
    samples.  Accuracy is excellent for central quantiles and good for
    tails once a few hundred samples have arrived; long chaos soaks use it
    to keep memory flat where an exact recorder would retain millions of
    floats.
    """

    __slots__ = ("q", "_n", "_heights", "_positions", "_desired", "_rate",
                 "_frozen")

    def __init__(self, q: float):
        if not 0 < q < 100:
            raise ValueError("q must be in (0, 100)")
        self.q = q
        p = q / 100.0
        self._n = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._rate = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        #: Constituent digests folded in via :meth:`merge`, each a
        #: ``(count, heights, positions)`` snapshot.  Kept verbatim
        #: rather than collapsed into the live markers: repeatedly
        #: re-summarizing to five markers compounds tail error at every
        #: fold (~ratcheting p99 upward by tens of percent over a few
        #: dozen shard merges), whereas querying the flat combination
        #: stays within a few percent.  Memory is 3 machine words + 10
        #: floats per merged digest — negligible at any realistic shard
        #: or hop count.
        self._frozen: List[Tuple[int, Tuple[float, ...],
                                 Tuple[float, ...]]] = []

    @property
    def count(self) -> int:
        return self._n + sum(f[0] for f in self._frozen)

    def record(self, x: float) -> None:
        self._n += 1
        heights = self._heights
        if len(heights) < 5:
            # Initialization phase: collect the first five samples sorted.
            heights.append(x)
            heights.sort()
            return
        # Find the cell containing x, clamping the extremes.
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= heights[k + 1]:
                k += 1
        positions = self._positions
        for i in range(k + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._rate[i]
        # Adjust interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = desired[i] - positions[i]
            if (d >= 1.0 and positions[i + 1] - positions[i] > 1.0) or \
                    (d <= -1.0 and positions[i - 1] - positions[i] < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    @staticmethod
    def _marker_points(heights: Sequence[float],
                       positions: Sequence[float],
                       n: int) -> List[Tuple[float, float]]:
        """An activated digest as five weighted points.

        Marker ``j`` represents the samples between its neighbors: half
        of each adjacent position gap, plus half a sample of its own at
        the extremes.  The weights sum to exactly ``n`` (gap total is
        ``positions[4] - positions[0] = n - 1``).
        """
        w = [0.0] * 5
        for j in range(4):
            gap = positions[j + 1] - positions[j]
            w[j] += gap / 2.0
            w[j + 1] += gap / 2.0
        w[0] += 0.5
        w[4] += 0.5
        return list(zip(heights, w))

    def _points(self) -> List[Tuple[float, float]]:
        """Live + frozen digests as one weighted point set."""
        if len(self._heights) < 5:
            pts = [(x, 1.0) for x in self._heights]
        else:
            pts = self._marker_points(self._heights, self._positions,
                                      self._n)
        for n, heights, positions in self._frozen:
            pts.extend(self._marker_points(heights, positions, n))
        return pts

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self._n == 0 and not self._frozen:
            raise ValueError("no samples")
        if not self._frozen:
            if len(self._heights) < 5:
                # Too few samples for P²: exact percentile fallback.
                return percentile(sorted(self._heights), self.q)
            return self._heights[2]
        # Merged digest: weighted order statistic over the flat
        # combination of all constituents.
        pts = sorted(self._points())
        target = (self.q / 100.0) * sum(w for _, w in pts)
        acc = 0.0
        for x, w in pts:
            acc += w
            if acc >= target:
                return x
        return pts[-1][0]

    @property
    def minimum(self) -> float:
        """Smallest sample represented (exact across merges)."""
        if self._n == 0 and not self._frozen:
            raise ValueError("no samples")
        lows = [f[1][0] for f in self._frozen]
        if self._heights:
            lows.append(min(self._heights) if len(self._heights) < 5
                        else self._heights[0])
        return min(lows)

    @property
    def maximum(self) -> float:
        """Largest sample represented (exact across merges)."""
        if self._n == 0 and not self._frozen:
            raise ValueError("no samples")
        highs = [f[1][4] for f in self._frozen]
        if self._heights:
            highs.append(max(self._heights) if len(self._heights) < 5
                         else self._heights[4])
        return max(highs)

    def merge(self, other: "StreamingQuantile") -> "StreamingQuantile":
        """Fold ``other``'s digest into this one (same ``q`` required).

        Needed wherever independently collected digests must combine:
        per-hop trace digests from overlay shards, or per-process metric
        merging from the shard driver (ROADMAP item 1).  P² has no exact
        merge — the marker heights are an estimate, not a sketch with a
        closure property — so merged-in digests are *retained as frozen
        constituents* and queries answer from the flat weighted
        combination (see ``_frozen``).  The previous approach collapsed
        the pair into five markers per merge by count-weighted height
        averaging; besides compounding error at every fold, it was
        outright wrong for barely activated digests, whose markers sit
        at positions ``1..5`` (raw sorted samples, not canonical
        quantile estimates) — folding many small shard digests dragged
        p99 toward the median by ~2x.  A digest still in its
        initialization phase (< 5 samples) holds raw samples, which are
        simply replayed — exact, no constituent needed.  ``other`` is
        snapshotted: mutating it afterwards does not affect ``self``.
        Accuracy is validated against exact percentiles in
        ``tests/core/test_streaming_merge.py`` and
        ``tests/property/test_streaming_merge_properties.py``.
        """
        if other.q != self.q:
            raise ValueError(
                f"cannot merge digests for different quantiles "
                f"({self.q} vs {other.q})")
        if other._n == 0 and not other._frozen:
            return self
        if len(other._heights) < 5:
            # other's live digest is still initializing: its heights ARE
            # its samples.  (A digest with frozen constituents always
            # has an activated live part, so this is the whole of it.)
            for x in other._heights:
                self.record(x)
            return self
        if len(self._heights) < 5 and not self._frozen:
            # self is still initializing: adopt other's digest wholesale,
            # then replay our raw samples into it.
            mine = list(self._heights)
            self._n = other._n
            self._heights = list(other._heights)
            self._positions = list(other._positions)
            self._desired = list(other._desired)
            self._frozen = list(other._frozen)
            for x in mine:
                self.record(x)
            return self
        self._frozen.append(
            (other._n, tuple(other._heights), tuple(other._positions)))
        self._frozen.extend(other._frozen)
        return self


#: Quantiles a streaming recorder tracks (matching ``summary()``'s keys).
STREAMING_QUANTILES: Tuple[float, ...] = (50.0, 95.0, 99.0, 99.9)


class LatencyRecorder:
    """Collects latency samples; answers percentile/mean queries.

    Exact mode (default) retains every sample and serves all queries from
    a cached sorted view — the sort happens once per burst of queries, not
    once per percentile, so ``summary()`` costs a single sort.

    Streaming mode (``streaming=True``) keeps O(1) memory: count, mean,
    max and P² estimators for the quantiles in
    :data:`STREAMING_QUANTILES`.  Use it for soaks where retaining every
    sample is too expensive; percentiles other than the tracked set are
    unavailable.
    """

    def __init__(self, name: str = "latency", streaming: bool = False):
        self.name = name
        self.streaming = streaming
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._estimators: Dict[float, StreamingQuantile] = {}
        if streaming:
            self._estimators = {
                q: StreamingQuantile(q) for q in STREAMING_QUANTILES}

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError("negative latency")
        self._count += 1
        self._sum += value
        if value > self._max:
            self._max = value
        if self.streaming:
            for estimator in self._estimators.values():
                estimator.record(value)
        else:
            self.samples.append(value)
            self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold another recorder's samples/digests into this one.

        Exact recorders concatenate samples (still exact).  Streaming
        recorders merge their P² digests via
        :meth:`StreamingQuantile.merge` (approximate).  Modes must
        match — merging an exact recorder into a streaming one would
        silently change the accuracy contract mid-object.
        """
        if self.streaming != other.streaming:
            raise ValueError("cannot merge exact and streaming recorders")
        if other._count == 0:
            return self
        self._count += other._count
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        if self.streaming:
            for q, estimator in self._estimators.items():
                estimator.merge(other._estimators[q])
        else:
            self.samples.extend(other.samples)
            self._sorted = None
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no samples")
        return self._sum / self._count

    def _view(self) -> List[float]:
        """The cached sorted view, rebuilt only after new samples."""
        if self._sorted is None or len(self._sorted) != len(self.samples):
            self._sorted = sorted(self.samples)
        return self._sorted

    def percentile(self, q: float) -> float:
        if self._count == 0:
            raise ValueError("no samples")
        if self.streaming:
            estimator = self._estimators.get(float(q))
            if estimator is None:
                raise ValueError(
                    f"streaming recorder tracks only {STREAMING_QUANTILES}; "
                    f"q={q} unavailable")
            return estimator.value
        return percentile(self._view(), q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    @property
    def max(self) -> float:
        if self._count == 0:
            raise ValueError("no samples")
        return self._max

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
        }


@dataclass
class ThroughputMeter:
    """Counts completions over a window to compute achieved throughput.

    The window opens at ``started_at``.  Construct with an explicit start
    time (``ThroughputMeter(started_at=env.now)``) or let the first
    recorded completion open the window; the old default of ``0.0``
    silently inflated the elapsed window for meters created mid-simulation
    and under-reported throughput.
    """

    started_at: Optional[float] = None
    completions: int = 0
    last_completion_at: float = 0.0

    def record(self, now: float) -> None:
        if self.started_at is None:
            self.started_at = now
        self.completions += 1
        self.last_completion_at = now

    def reset(self, now: float) -> None:
        """Restart the measurement window at ``now``."""
        self.started_at = now
        self.completions = 0
        self.last_completion_at = now

    def rate(self, now: Optional[float] = None) -> float:
        if self.started_at is None:
            return 0.0
        end = now if now is not None else self.last_completion_at
        elapsed = end - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.completions / elapsed


@dataclass
class SloTracker:
    """Goodput and deadline-miss accounting for overload experiments.

    Raw open-loop throughput does not collapse under overload — a
    saturated server still completes ~capacity requests per second,
    they are just all late.  What collapses is **goodput**:
    completions that made their deadline.  This tracker therefore
    classifies every offered request into exactly one terminal bucket:

    * ``shed`` — rejected by admission control (fast error),
    * ``expired`` — dropped mid-path because its deadline passed,
    * ``deadline_misses`` — completed, but after its deadline,
    * ``good`` — completed within its deadline (via ``complete()``).

    ``snapshot()`` returns the running counters so a benchmark can diff
    phases (pre-surge vs surge) without multiple tracker objects.
    """

    offered: int = 0
    admitted: int = 0
    degraded: int = 0
    shed: int = 0
    expired: int = 0
    completed: int = 0
    deadline_misses: int = 0
    started_at: Optional[float] = None
    last_event_at: float = 0.0

    def offer(self, now: float) -> None:
        if self.started_at is None:
            self.started_at = now
        self.offered += 1
        self.last_event_at = now

    def admit(self, degraded: bool = False) -> None:
        self.admitted += 1
        if degraded:
            self.degraded += 1

    def shed_one(self) -> None:
        self.shed += 1

    def expire(self) -> None:
        self.expired += 1

    def complete(self, now: float, missed_deadline: bool = False) -> None:
        self.completed += 1
        if missed_deadline:
            self.deadline_misses += 1
        self.last_event_at = now

    @property
    def good(self) -> int:
        """Completions that made their deadline."""
        return self.completed - self.deadline_misses

    def goodput(self, now: Optional[float] = None) -> float:
        """Good completions per second over the tracked window."""
        if self.started_at is None:
            return 0.0
        end = now if now is not None else self.last_event_at
        elapsed = end - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.good / elapsed

    def goodput_fraction(self) -> float:
        """Good completions as a fraction of offered load."""
        if self.offered == 0:
            return 0.0
        return self.good / self.offered

    def snapshot(self) -> Dict[str, int]:
        """Running counters, for phase diffing in benchmarks."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "degraded": self.degraded,
            "shed": self.shed,
            "expired": self.expired,
            "completed": self.completed,
            "deadline_misses": self.deadline_misses,
            "good": self.good,
        }


def normalize(values: Iterable[float], reference: float) -> List[float]:
    """Divide each value by ``reference`` (the paper's normalization)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return [v / reference for v in values]
