"""Latency/throughput measurement helpers used by every experiment."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..sim.randomness import percentile


class LatencyRecorder:
    """Collects latency samples; answers percentile/mean queries."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError("negative latency")
        self.samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return sum(self.samples) / len(self.samples)

    def percentile(self, q: float) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return percentile(sorted(self.samples), q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def p999(self) -> float:
        return self.percentile(99.9)

    @property
    def max(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return max(self.samples)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
        }


@dataclass
class ThroughputMeter:
    """Counts completions over a window to compute achieved throughput."""

    started_at: float = 0.0
    completions: int = 0
    last_completion_at: float = 0.0

    def record(self, now: float) -> None:
        self.completions += 1
        self.last_completion_at = now

    def rate(self, now: Optional[float] = None) -> float:
        end = now if now is not None else self.last_completion_at
        elapsed = end - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.completions / elapsed


def normalize(values: Iterable[float], reference: float) -> List[float]:
    """Divide each value by ``reference`` (the paper's normalization)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return [v / reference for v in values]
