"""The machine-learned ranking model (software side).

"...processed, and then passed to a machine learned model to determine how
relevant the document is to the query."  In Catapult v2, unlike v1, the
ML portion runs in *software*; here it is a small gradient-boosted
ensemble of decision stumps trained with least-squares boosting —
implemented from scratch, trainable on the synthetic corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .features import NUM_FEATURES, FeatureVector


@dataclass(frozen=True)
class Stump:
    """One regression stump: feature threshold -> left/right value."""

    feature: int
    threshold: float
    left_value: float
    right_value: float

    def predict(self, features: FeatureVector) -> float:
        if features[self.feature] <= self.threshold:
            return self.left_value
        return self.right_value


class BoostedStumpModel:
    """Least-squares gradient boosting over decision stumps."""

    def __init__(self, num_rounds: int = 50, learning_rate: float = 0.3,
                 thresholds_per_feature: int = 8, *, rng: random.Random):
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.thresholds_per_feature = thresholds_per_feature
        # Required: pass a stream derived from RandomStreams so model
        # randomization never silently shares seed 0 with other
        # components (training itself is deterministic today, but the
        # rng is part of the model's public construction contract).
        self.rng = rng
        self.base_score = 0.0
        self.stumps: List[Stump] = []

    # ------------------------------------------------------------------
    def fit(self, features: Sequence[FeatureVector],
            labels: Sequence[float]) -> "BoostedStumpModel":
        if len(features) != len(labels) or not features:
            raise ValueError("features/labels must be equal-length, non-empty")
        n = len(features)
        self.base_score = sum(labels) / n
        predictions = [self.base_score] * n
        for _ in range(self.num_rounds):
            residuals = [labels[i] - predictions[i] for i in range(n)]
            stump = self._best_stump(features, residuals)
            if stump is None:
                break
            self.stumps.append(stump)
            for i in range(n):
                predictions[i] += self.learning_rate * \
                    stump.predict(features[i])
        return self

    def _candidate_thresholds(self, features: Sequence[FeatureVector],
                              feature: int) -> List[float]:
        values = sorted({f[feature] for f in features})
        if len(values) <= 1:
            return []
        step = max(1, len(values) // self.thresholds_per_feature)
        return [values[i] for i in range(0, len(values) - 1, step)]

    def _best_stump(self, features: Sequence[FeatureVector],
                    residuals: List[float]) -> Optional[Stump]:
        best: Optional[Tuple[float, Stump]] = None
        n = len(features)
        for feature in range(NUM_FEATURES):
            for threshold in self._candidate_thresholds(features, feature):
                left = [residuals[i] for i in range(n)
                        if features[i][feature] <= threshold]
                right = [residuals[i] for i in range(n)
                         if features[i][feature] > threshold]
                if not left or not right:
                    continue
                left_mean = sum(left) / len(left)
                right_mean = sum(right) / len(right)
                # Squared-error reduction of this split.
                gain = len(left) * left_mean ** 2 \
                    + len(right) * right_mean ** 2
                if best is None or gain > best[0]:
                    best = (gain, Stump(feature, threshold,
                                        left_mean, right_mean))
        return best[1] if best else None

    # ------------------------------------------------------------------
    def predict(self, features: FeatureVector) -> float:
        score = self.base_score
        for stump in self.stumps:
            score += self.learning_rate * stump.predict(features)
        return score

    def rank(self, feature_vectors: Sequence[FeatureVector]) -> List[int]:
        """Indices of documents, best first."""
        scored = [(self.predict(fv), -i) for i, fv in
                  enumerate(feature_vectors)]
        scored.sort(reverse=True)
        return [-neg_i for _score, neg_i in scored]


def synthetic_relevance(query_terms: Sequence[int],
                        doc_terms: Sequence[int], quality: float) -> float:
    """Ground-truth relevance used to train/evaluate the model.

    A smooth function of term overlap and quality — unknown to the model,
    recoverable from the features.
    """
    if not doc_terms:
        return 0.0
    qset = set(query_terms)
    hits = sum(1 for t in doc_terms if t in qset)
    coverage = len(qset & set(doc_terms)) / max(1, len(qset))
    return 2.0 * coverage + 5.0 * hits / len(doc_terms) + 0.5 * quality
