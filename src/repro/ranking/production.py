"""The five-day production study (paper Figs. 7 and 8).

Two identically-sized datacenters run the ranking service over a five-day
diurnal trace: one software-only, one FPGA-accelerated.  The software
datacenter's load balancer "caps the incoming traffic when tail latencies
begin exceeding acceptable thresholds", while the FPGA datacenter absorbs
more than twice the offered load at latencies that "never exceed the
software datacenter at any load".

Each trace window is simulated with a short open-loop run at that
window's offered load; the 99.9th-percentile latency per window is the
quantity Fig. 7 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..workloads.diurnal import (
    DiurnalTraceConfig,
    apply_load_balancer_cap,
    five_day_trace,
)
from .service import (
    AccelerationMode,
    RankingServiceConfig,
    run_open_loop,
    saturation_qps,
)


@dataclass
class WindowResult:
    """One trace window in one datacenter."""

    time_days: float
    offered_load: float      # normalized to software typical average
    admitted_load: float     # after the software DC's balancer cap
    p999_latency: float      # seconds
    mean_latency: float


@dataclass
class FiveDayResult:
    """Both datacenters over the full trace."""

    software: List[WindowResult]
    fpga: List[WindowResult]
    #: The normalization constant: software p999 at typical load.
    latency_target: float
    #: qps corresponding to normalized load 1.0.
    base_qps: float


def run_five_day_study(trace_config: Optional[DiurnalTraceConfig] = None,
                       queries_per_window: int = 250,
                       software_cap: float = 1.35,
                       seed: int = 0) -> FiveDayResult:
    """Simulate Fig. 7: five days, two datacenters.

    ``software_cap`` is the balancer's admitted-load ceiling for the
    software datacenter, in normalized load units.
    """
    software_config = RankingServiceConfig(mode=AccelerationMode.SOFTWARE)
    fpga_config = RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA)

    # Normalized load 1.0 = the software DC's typical average: run it at
    # a comfortable fraction of capacity.
    base_qps = 0.72 * saturation_qps(software_config)

    # Latency target: software p999 at typical load.
    reference = run_open_loop(software_config, base_qps,
                              num_queries=4 * queries_per_window,
                              seed=seed)
    latency_target = reference.latency.p999

    trace = five_day_trace(trace_config)
    software_rows: List[WindowResult] = []
    fpga_rows: List[WindowResult] = []
    for i, sample in enumerate(trace):
        admitted = apply_load_balancer_cap(sample.software_offered,
                                           software_cap)
        sw = run_open_loop(software_config, admitted * base_qps,
                           num_queries=queries_per_window,
                           seed=seed + 2 * i)
        software_rows.append(WindowResult(
            time_days=sample.time_days,
            offered_load=sample.software_offered,
            admitted_load=admitted,
            p999_latency=sw.latency.p999,
            mean_latency=sw.latency.mean))

        fp = run_open_loop(fpga_config, sample.fpga_offered * base_qps,
                           num_queries=queries_per_window,
                           seed=seed + 2 * i + 1)
        fpga_rows.append(WindowResult(
            time_days=sample.time_days,
            offered_load=sample.fpga_offered,
            admitted_load=sample.fpga_offered,
            p999_latency=fp.latency.p999,
            mean_latency=fp.latency.mean))
    return FiveDayResult(software=software_rows, fpga=fpga_rows,
                         latency_target=latency_target,
                         base_qps=base_qps)
