"""Finite-state-machine features (the paper's first feature class).

"The first is the traditional finite state machines used in many search
engines (e.g. 'count the number of occurrences of query term two')."

The substrate is a real multi-pattern matcher: an Aho-Corasick automaton
over term-id sequences.  Patterns are the query's unigrams and bigrams;
running a document through the automaton yields occurrence counts and
first-hit positions in a single pass — exactly the streaming behaviour
the hardware FSMs exploit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class MatchStats:
    """Aggregated automaton output for one document."""

    #: pattern index -> number of occurrences.
    counts: Dict[int, int] = field(default_factory=dict)
    #: pattern index -> position (term offset) of first occurrence.
    first_positions: Dict[int, int] = field(default_factory=dict)
    #: total terms scanned.
    scanned: int = 0


class AhoCorasick:
    """Aho-Corasick automaton over integer alphabets (term ids)."""

    def __init__(self, patterns: Sequence[Sequence[int]]):
        if not patterns:
            raise ValueError("at least one pattern required")
        self.patterns: List[Tuple[int, ...]] = [
            tuple(p) for p in patterns]
        for p in self.patterns:
            if not p:
                raise ValueError("empty pattern")
        # goto is a list of dicts: state -> {symbol: state}.
        self._goto: List[Dict[int, int]] = [{}]
        self._fail: List[int] = [0]
        self._output: List[List[int]] = [[]]
        self._build()

    def _build(self) -> None:
        # Phase 1: trie.
        for index, pattern in enumerate(self.patterns):
            state = 0
            for symbol in pattern:
                nxt = self._goto[state].get(symbol)
                if nxt is None:
                    nxt = len(self._goto)
                    self._goto.append({})
                    self._fail.append(0)
                    self._output.append([])
                    self._goto[state][symbol] = nxt
                state = nxt
            self._output[state].append(index)
        # Phase 2: failure links (BFS).
        queue = deque()
        for symbol, state in self._goto[0].items():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            state = queue.popleft()
            for symbol, nxt in self._goto[state].items():
                queue.append(nxt)
                fallback = self._fail[state]
                while fallback and symbol not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(symbol, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] = self._output[nxt] + \
                    self._output[self._fail[nxt]]
        self.num_states = len(self._goto)

    def step(self, state: int, symbol: int) -> int:
        """One automaton transition."""
        while state and symbol not in self._goto[state]:
            state = self._fail[state]
        return self._goto[state].get(symbol, 0)

    def scan(self, text: Sequence[int]) -> MatchStats:
        """Run ``text`` through the automaton, gathering match stats."""
        stats = MatchStats()
        state = 0
        for position, symbol in enumerate(text):
            state = self.step(state, symbol)
            for pattern_index in self._output[state]:
                stats.counts[pattern_index] = \
                    stats.counts.get(pattern_index, 0) + 1
                stats.first_positions.setdefault(pattern_index, position)
        stats.scanned = len(text)
        return stats


def query_patterns(query_terms: Sequence[int]) -> List[Tuple[int, ...]]:
    """Patterns the ranking FSMs track: unique unigrams then bigrams."""
    patterns: List[Tuple[int, ...]] = []
    seen = set()
    for term in query_terms:
        if (term,) not in seen:
            patterns.append((term,))
            seen.add((term,))
    for a, b in zip(query_terms, query_terms[1:]):
        if (a, b) not in seen:
            patterns.append((a, b))
            seen.add((a, b))
    return patterns
