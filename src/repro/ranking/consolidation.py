"""FPGA consolidation: multiple ranking servers sharing fewer FPGAs.

Paper §III-A: "Even at these higher loads, the FPGA remains
underutilized, as the software portion of ranking saturates the host
server before the FPGA is saturated.  Having multiple servers drive
fewer FPGAs addresses the underutilization of the FPGAs, which is the
goal of our remote acceleration model."

This module quantifies that: N ranking servers offload feature
extraction to a shared pool of M remote FFU FPGAs (N >= M).  Outputs
per-consolidation-ratio FPGA utilization and query tail latency —
utilization climbs toward saturation as servers-per-FPGA grows while
latency stays flat until the pool itself saturates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.metrics import LatencyRecorder
from ..sim import Environment, Resource
from .ffu import FfuConfig, FfuDpfRole, SoftwareTimingModel, WorkloadModel
from .service import RemoteAccessConfig


@dataclass
class ConsolidationConfig:
    """One consolidation experiment point."""

    num_servers: int = 4
    num_fpgas: int = 2
    cores_per_server: int = 8
    #: Per-server offered load as a fraction of its own software-stage
    #: capacity (the host is the bottleneck, per the paper).
    server_load: float = 0.85
    workload: WorkloadModel = field(default_factory=WorkloadModel)
    software: SoftwareTimingModel = field(
        default_factory=SoftwareTimingModel)
    ffu: FfuConfig = field(default_factory=FfuConfig)
    remote: RemoteAccessConfig = field(default_factory=RemoteAccessConfig)

    @property
    def servers_per_fpga(self) -> float:
        return self.num_servers / self.num_fpgas


@dataclass
class ConsolidationResult:
    """Measured outcome of one point."""

    servers_per_fpga: float
    fpga_utilization: float
    latency: LatencyRecorder
    queries_completed: int

    def row(self) -> Dict[str, float]:
        return {
            "servers_per_fpga": self.servers_per_fpga,
            "fpga_utilization": self.fpga_utilization,
            "p99_ms": self.latency.p99 * 1e3,
            "mean_ms": self.latency.mean * 1e3,
            "completed": float(self.queries_completed),
        }


class _SharedFfuPool:
    """M FFU FPGAs behind join-shortest-queue dispatch."""

    def __init__(self, env: Environment, config: ConsolidationConfig):
        self.env = env
        self.config = config
        self.role = FfuDpfRole(config.ffu)
        self._slots = [Resource(env, capacity=1)
                       for _ in range(config.num_fpgas)]
        self._depth = [0] * config.num_fpgas
        self.busy_time = 0.0

    def _pick(self) -> int:
        best = 0
        for i in range(1, len(self._slots)):
            if self._depth[i] < self._depth[best]:
                best = i
        return best

    def extract(self, work):
        """Process: remote feature extraction for one query."""
        remote = self.config.remote
        network = (remote.round_trip
                   + work.document_bytes * 8 / remote.ltl_bandwidth_bps
                   + remote.per_message_overhead)
        index = self._pick()
        self._depth[index] += 1
        yield self.env.timeout(network / 2)
        with self._slots[index].request() as slot:
            yield slot
            compute = self.role.compute_time(work)
            self.busy_time += compute
            yield self.env.timeout(compute)
        self._depth[index] -= 1
        yield self.env.timeout(network / 2)


def run_consolidation_point(config: Optional[ConsolidationConfig] = None,
                            queries_per_server: int = 400,
                            seed: int = 0) -> ConsolidationResult:
    """Simulate N servers sharing M remote FFU FPGAs."""
    config = config or ConsolidationConfig()
    env = Environment()
    pool = _SharedFfuPool(env, config)
    latency = LatencyRecorder("query")
    completed = [0]

    # A server's software-stage capacity (pre + post on its cores).
    software = config.software
    sample_rng = random.Random(seed)
    mean_work = [config.workload.sample(sample_rng) for _ in range(200)]
    mean_core_time = sum(
        software.pre_time(w) + software.post_time(w)
        for w in mean_work) / len(mean_work)
    per_server_qps = config.server_load * config.cores_per_server \
        / mean_core_time

    def query(server_cores, work):
        start = env.now
        with server_cores.request() as core:
            yield core
            yield env.timeout(software.pre_time(work))
        yield env.process(pool.extract(work))
        with server_cores.request() as core:
            yield core
            yield env.timeout(software.post_time(work))
        latency.record(env.now - start)
        completed[0] += 1

    def server(index: int):
        rng = random.Random(seed * 997 + index)
        cores = Resource(env, capacity=config.cores_per_server)
        for _ in range(queries_per_server):
            work = config.workload.sample(rng)
            env.process(query(cores, work))
            yield env.timeout(rng.expovariate(per_server_qps))

    for index in range(config.num_servers):
        env.process(server(index), name=f"server-{index}")
    env.run()
    utilization = pool.busy_time / (env.now * config.num_fpgas) \
        if env.now > 0 else 0.0
    return ConsolidationResult(
        servers_per_fpga=config.servers_per_fpga,
        fpga_utilization=utilization, latency=latency,
        queries_completed=completed[0])


def consolidation_sweep(ratios: List[int], num_fpgas: int = 2,
                        queries_per_server: int = 400,
                        seed: int = 0) -> List[ConsolidationResult]:
    """Sweep servers-per-FPGA (integer ratios) at a fixed pool size."""
    results = []
    for i, ratio in enumerate(ratios):
        config = ConsolidationConfig(
            num_servers=ratio * num_fpgas, num_fpgas=num_fpgas)
        results.append(run_consolidation_point(
            config, queries_per_server=queries_per_server,
            seed=seed + i))
    return results
