"""Synthetic corpus and query workload.

Substitute for the proprietary Bing index/queries (see DESIGN.md): a
Zipfian vocabulary, documents as term-id sequences with a few "topics",
and queries drawn to overlap document topics so that relevance actually
varies.  Everything is deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class Document:
    """A document: term ids plus static quality metadata."""

    doc_id: int
    terms: List[int]
    quality: float  # static rank signal in [0, 1]

    @property
    def length(self) -> int:
        return len(self.terms)

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size (4 B per term id)."""
        return 4 * len(self.terms)


@dataclass
class Query:
    """A query: a short sequence of term ids."""

    query_id: int
    terms: List[int]

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.terms)


class ZipfSampler:
    """Draw term ids 0..vocab-1 with Zipf(s) frequencies."""

    def __init__(self, vocabulary_size: int, exponent: float = 1.07,
                 rng: Optional[random.Random] = None):
        if vocabulary_size < 1:
            raise ValueError("vocabulary must be non-empty")
        self.vocabulary_size = vocabulary_size
        self.exponent = exponent
        self.rng = rng or random.Random(0)
        weights = [1.0 / (rank + 1) ** exponent
                   for rank in range(vocabulary_size)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)

    def sample(self) -> int:
        u = self.rng.random()
        lo, hi = 0, self.vocabulary_size - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


class SyntheticCorpus:
    """Generator for documents and queries sharing topic structure.

    Topics are disjoint term ranges; a document mixes background Zipf
    terms with terms from its topic, and a query picks a topic plus a
    couple of focus terms, so documents on the query's topic score higher.
    """

    def __init__(self, vocabulary_size: int = 50_000, num_topics: int = 64,
                 seed: int = 0):
        self.vocabulary_size = vocabulary_size
        self.num_topics = num_topics
        self.seed = seed
        self._rng = random.Random(seed)
        self._zipf = ZipfSampler(vocabulary_size,
                                 rng=random.Random(seed ^ 0x5A17))
        self._doc_counter = 0
        self._query_counter = 0
        self._topic_span = vocabulary_size // num_topics

    def _topic_terms(self, topic: int) -> range:
        start = topic * self._topic_span
        return range(start, start + self._topic_span)

    def make_document(self, topic: Optional[int] = None,
                      mean_length: int = 300) -> Document:
        """One document; ~30% of terms come from its topic."""
        rng = self._rng
        if topic is None:
            topic = rng.randrange(self.num_topics)
        length = max(20, int(rng.lognormvariate(
            math.log(mean_length), 0.5)))
        topic_range = self._topic_terms(topic)
        terms = []
        for _ in range(length):
            if rng.random() < 0.3:
                terms.append(rng.choice(topic_range))
            else:
                terms.append(self._zipf.sample())
        doc = Document(doc_id=self._doc_counter, terms=terms,
                       quality=rng.betavariate(4, 4))
        self._doc_counter += 1
        return doc

    def make_query(self, topic: Optional[int] = None,
                   num_terms: Optional[int] = None) -> Query:
        rng = self._rng
        if topic is None:
            topic = rng.randrange(self.num_topics)
        if num_terms is None:
            num_terms = rng.choice((2, 2, 3, 3, 3, 4, 5))
        topic_range = self._topic_terms(topic)
        terms = [rng.choice(topic_range) for _ in range(num_terms)]
        query = Query(query_id=self._query_counter, terms=terms)
        self._query_counter += 1
        return query

    def make_result_set(self, query: Query, num_docs: int,
                        on_topic_fraction: float = 0.4) -> List[Document]:
        """Candidate documents for a query: a mix of on/off topic."""
        topic = query.terms[0] // self._topic_span
        docs = []
        for _ in range(num_docs):
            if self._rng.random() < on_topic_fraction:
                docs.append(self.make_document(topic=topic))
            else:
                docs.append(self.make_document())
        return docs
