"""Bing web-search ranking acceleration (paper §III-A).

Functional pieces (corpus, FSM/DP features, ML scorer) plus the FFU/DPF
role models and the service-level queueing simulation that regenerates
Figs. 6-8 and 11.
"""

from .consolidation import (
    ConsolidationConfig,
    ConsolidationResult,
    consolidation_sweep,
    run_consolidation_point,
)
from .corpus import Document, Query, SyntheticCorpus, ZipfSampler
from .dpf import (
    DpFeatureEngine,
    DpFeatureValues,
    lcs_length,
    local_alignment_score,
    min_covering_window,
    proximity_score,
)
from .features import (
    FEATURE_NAMES,
    NUM_FEATURES,
    FeatureExtractor,
    FeatureVector,
)
from .ffu import (
    FfuConfig,
    FfuDpfRole,
    QueryWork,
    SoftwareTimingModel,
    WorkloadModel,
)
from .fsm import AhoCorasick, MatchStats, query_patterns
from .model import BoostedStumpModel, Stump, synthetic_relevance
from .service import (
    AccelerationMode,
    LoadResult,
    RankingServer,
    RankingServiceConfig,
    RemoteAccessConfig,
    latency_vs_throughput,
    run_open_loop,
    saturation_qps,
)

__all__ = [
    "AccelerationMode",
    "ConsolidationConfig",
    "ConsolidationResult",
    "consolidation_sweep",
    "run_consolidation_point",
    "AhoCorasick",
    "BoostedStumpModel",
    "Document",
    "DpFeatureEngine",
    "DpFeatureValues",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "FeatureVector",
    "FfuConfig",
    "FfuDpfRole",
    "LoadResult",
    "MatchStats",
    "NUM_FEATURES",
    "Query",
    "QueryWork",
    "RankingServer",
    "RankingServiceConfig",
    "RemoteAccessConfig",
    "SoftwareTimingModel",
    "Stump",
    "SyntheticCorpus",
    "WorkloadModel",
    "ZipfSampler",
    "latency_vs_throughput",
    "lcs_length",
    "local_alignment_score",
    "min_covering_window",
    "proximity_score",
    "query_patterns",
    "run_open_loop",
    "saturation_qps",
    "synthetic_relevance",
]
