"""Feature vector assembly for (query, document) pairs.

Combines the FSM (occurrence) features with the DP features and static
document signals into a fixed-order numeric vector consumed by the
machine-learned scorer.  The same function runs in "software" and inside
the FFU/DPF role models — the hardware accelerates it, it does not change
the math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .corpus import Document, Query
from .dpf import DpFeatureEngine
from .fsm import AhoCorasick, query_patterns

#: Feature order of the assembled vector.
FEATURE_NAMES: List[str] = [
    "unigram_hits",          # total unigram occurrences
    "unigram_coverage",      # fraction of query unigrams present
    "bigram_hits",           # total bigram (phrase) occurrences
    "first_hit_position",    # normalized position of earliest hit
    "hit_density",           # hits per document term
    "dp_alignment",
    "dp_lcs",
    "dp_min_window",
    "dp_proximity",
    "doc_length",            # log-ish scaled length
    "doc_quality",           # static quality signal
]

NUM_FEATURES = len(FEATURE_NAMES)


@dataclass
class FeatureVector:
    """A named, ordered feature vector."""

    values: List[float]

    def __post_init__(self) -> None:
        if len(self.values) != NUM_FEATURES:
            raise ValueError(
                f"expected {NUM_FEATURES} features, got {len(self.values)}")

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(FEATURE_NAMES, self.values))

    def __getitem__(self, index: int) -> float:
        return self.values[index]


class FeatureExtractor:
    """Per-query extractor: builds the automaton once, scans documents."""

    def __init__(self, query: Query):
        self.query = query
        self.patterns = query_patterns(query.terms)
        self._num_unigrams = len(set(query.terms))
        self.automaton = AhoCorasick(self.patterns)
        self.dp_engine = DpFeatureEngine()

    def extract(self, document: Document) -> FeatureVector:
        stats = self.automaton.scan(document.terms)
        unigram_indices = range(self._num_unigrams)
        bigram_indices = range(self._num_unigrams, len(self.patterns))
        unigram_hits = sum(stats.counts.get(i, 0) for i in unigram_indices)
        covered = sum(1 for i in unigram_indices if stats.counts.get(i, 0))
        bigram_hits = sum(stats.counts.get(i, 0) for i in bigram_indices)
        if stats.first_positions:
            first_hit = min(stats.first_positions.values()) / max(
                1, document.length)
        else:
            first_hit = 1.0
        density = (unigram_hits + bigram_hits) / max(1, document.length)
        dp_values = self.dp_engine.compute(self.query.terms, document.terms)
        values = [
            float(unigram_hits),
            covered / max(1, self._num_unigrams),
            float(bigram_hits),
            first_hit,
            density,
            dp_values.alignment_score,
            float(dp_values.lcs_length),
            float(dp_values.min_window or 0),
            dp_values.proximity_score,
            float(document.length) ** 0.5,
            document.quality,
        ]
        return FeatureVector(values)

    def extract_all(self, documents: Sequence[Document]) \
            -> List[FeatureVector]:
        return [self.extract(doc) for doc in documents]
