"""Ranking service queueing simulation (paper §III-A, Figs. 6-8, 11).

One :class:`RankingServer` models a production web-search ranking server:
queries arrive, pass a software *pre* stage (parse + candidate selection),
a *feature extraction* stage (software, local FPGA, or remote FPGA over
LTL) and a software *post* stage (ML scoring).  Host cores are a counted
resource; the FPGA role is a pipeline with a handful of concurrent query
slots.

The three modes reproduce the paper's three curves:

* ``SOFTWARE`` — everything on cores (the baseline normalized to 1.0),
* ``LOCAL_FPGA`` — features offloaded over PCIe; "the software portion of
  ranking saturates the host server before the FPGA is saturated",
* ``REMOTE_FPGA`` — features shipped over LTL to another server's FPGA;
  adds only microseconds to millisecond-scale queries (Fig. 11).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.metrics import LatencyRecorder
from ..haas.fpga_manager import FpgaHealth, FpgaManager
from ..sim import Environment, Resource
from .ffu import FfuConfig, FfuDpfRole, QueryWork, SoftwareTimingModel, \
    WorkloadModel


class AccelerationMode(enum.Enum):
    SOFTWARE = "software"
    LOCAL_FPGA = "local_fpga"
    REMOTE_FPGA = "remote_fpga"


@dataclass
class RemoteAccessConfig:
    """Cost of reaching a pooled FPGA over LTL (measured, Fig. 10)."""

    round_trip: float = 2.9e-6           # same-TOR pool locality
    ltl_bandwidth_bps: float = 38e9      # LTL goodput on the 40G port
    per_message_overhead: float = 2.0e-6  # ER + packetization both ends


@dataclass
class RankingServiceConfig:
    """Everything defining one ranking server's performance."""

    mode: AccelerationMode = AccelerationMode.SOFTWARE
    num_cores: int = 8
    fpga_pipeline_slots: int = 4
    workload: WorkloadModel = field(default_factory=WorkloadModel)
    software: SoftwareTimingModel = field(
        default_factory=SoftwareTimingModel)
    ffu: FfuConfig = field(default_factory=FfuConfig)
    remote: RemoteAccessConfig = field(default_factory=RemoteAccessConfig)


class RankingServer:
    """One server under a given acceleration mode."""

    def __init__(self, env: Environment, config: RankingServiceConfig,
                 rng: Optional[random.Random] = None):
        self.env = env
        self.config = config
        self.rng = rng or random.Random(0)
        self.cores = Resource(env, capacity=config.num_cores)
        self.role = FfuDpfRole(config.ffu)
        self.fpga_slots = Resource(env, capacity=config.fpga_pipeline_slots)
        self.latency = LatencyRecorder("query")
        self.completed = 0
        #: Is the accelerator reachable?  While False, queries run every
        #: stage on cores — "queries are serviced by software when their
        #: FPGA fails" (§II-B).
        self.fpga_available = True
        self.software_fallbacks = 0

    # ------------------------------------------------------------------
    def fail_fpga(self) -> None:
        """Accelerator lost: degrade to the software timing model."""
        self.fpga_available = False

    def restore_fpga(self) -> None:
        """Accelerator capacity is back: resume hardware scoring."""
        self.fpga_available = True

    def bind_fpga_health(self, manager: FpgaManager) -> None:
        """Follow an FPGA Manager's health: degrade to software whenever
        the board leaves HEALTHY, restore when it returns."""
        previous = manager.on_health_change

        def chained(fm, old, new, reason):
            if previous is not None:
                previous(fm, old, new, reason)
            if new is FpgaHealth.HEALTHY:
                self.restore_fpga()
            else:
                self.fail_fpga()

        manager.on_health_change = chained
        if manager.health is not FpgaHealth.HEALTHY:
            self.fail_fpga()

    # ------------------------------------------------------------------
    def feature_stage_time(self, work: QueryWork) -> float:
        """Feature-extraction service time in the configured mode."""
        mode = self.config.mode
        if mode is AccelerationMode.SOFTWARE:
            return self.config.software.feature_time(work)
        if mode is AccelerationMode.LOCAL_FPGA:
            return self.role.local_service_time(work)
        remote = self.config.remote
        network = (remote.round_trip
                   + work.document_bytes * 8 / remote.ltl_bandwidth_bps
                   + remote.per_message_overhead)
        return network + self.role.compute_time(work)

    def handle_query(self, work: Optional[QueryWork] = None):
        """Process: one query through pre -> features -> post."""
        if work is None:
            work = self.config.workload.sample(self.rng)
        arrival = self.env.now
        software = self.config.software

        accelerated = (self.config.mode is not AccelerationMode.SOFTWARE
                       and self.fpga_available)
        if self.config.mode is not AccelerationMode.SOFTWARE \
                and not self.fpga_available:
            self.software_fallbacks += 1
        if not accelerated:
            # The owning thread runs all stages back to back.
            with self.cores.request() as core:
                yield core
                yield self.env.timeout(software.pre_time(work)
                                       + software.feature_time(work)
                                       + software.post_time(work))
        else:
            with self.cores.request() as core:
                yield core
                yield self.env.timeout(software.pre_time(work))
            # Core released while the FPGA does the heavy lifting.
            with self.fpga_slots.request() as slot:
                yield slot
                yield self.env.timeout(self.feature_stage_time(work))
            with self.cores.request() as core:
                yield core
                yield self.env.timeout(software.post_time(work))

        self.completed += 1
        latency = self.env.now - arrival
        self.latency.record(latency)
        return latency


@dataclass
class LoadResult:
    """Outcome of one open-loop run at a fixed arrival rate."""

    offered_qps: float
    achieved_qps: float
    latency: LatencyRecorder

    def row(self) -> Dict[str, float]:
        summary = self.latency.summary()
        summary["offered_qps"] = self.offered_qps
        summary["achieved_qps"] = self.achieved_qps
        return summary


def run_open_loop(config: RankingServiceConfig, arrival_rate_qps: float,
                  num_queries: int = 2000, seed: int = 0,
                  warmup_fraction: float = 0.1) -> LoadResult:
    """Drive one server with Poisson arrivals; collect steady-state latency.

    The first ``warmup_fraction`` of completions is discarded.
    """
    env = Environment()
    rng = random.Random(seed)
    server = RankingServer(env, config, rng=random.Random(seed + 1))
    finish_times: List[float] = []

    def generator(env):
        for _ in range(num_queries):
            env.process(server.handle_query())
            yield env.timeout(rng.expovariate(arrival_rate_qps))

    env.process(generator(env))
    env.run()
    warmup = int(num_queries * warmup_fraction)
    recorder = LatencyRecorder("steady-state")
    recorder.extend(server.latency.samples[warmup:])
    achieved = server.completed / env.now if env.now > 0 else 0.0
    return LoadResult(offered_qps=arrival_rate_qps, achieved_qps=achieved,
                      latency=recorder)


def saturation_qps(config: RankingServiceConfig, seed: int = 0,
                   num_queries: int = 1500) -> float:
    """Estimate a mode's max sustainable throughput (capacity).

    Closed-loop with enormous concurrency ~ work-conserving capacity.
    """
    env = Environment()
    server = RankingServer(env, config, rng=random.Random(seed + 1))

    def closed_loop(env):
        for _ in range(num_queries):
            env.process(server.handle_query())
        yield env.timeout(0)

    env.process(closed_loop(env))
    env.run()
    return server.completed / env.now


def latency_vs_throughput(config: RankingServiceConfig,
                          rates_qps: List[float], num_queries: int = 2000,
                          seed: int = 0) -> List[LoadResult]:
    """Sweep arrival rates, one open-loop run each (Fig. 6's x-axis)."""
    return [run_open_loop(config, rate, num_queries=num_queries,
                          seed=seed + i)
            for i, rate in enumerate(rates_qps)]
