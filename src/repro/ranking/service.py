"""Ranking service queueing simulation (paper §III-A, Figs. 6-8, 11).

One :class:`RankingServer` models a production web-search ranking server:
queries arrive, pass a software *pre* stage (parse + candidate selection),
a *feature extraction* stage (software, local FPGA, or remote FPGA over
LTL) and a software *post* stage (ML scoring).  Host cores are a counted
resource; the FPGA role is a pipeline with a handful of concurrent query
slots.

The three modes reproduce the paper's three curves:

* ``SOFTWARE`` — everything on cores (the baseline normalized to 1.0),
* ``LOCAL_FPGA`` — features offloaded over PCIe; "the software portion of
  ranking saturates the host server before the FPGA is saturated",
* ``REMOTE_FPGA`` — features shipped over LTL to another server's FPGA;
  adds only microseconds to millisecond-scale queries (Fig. 11).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.metrics import LatencyRecorder, SloTracker
from ..haas.fpga_manager import FpgaHealth, FpgaManager
from ..overload import (
    AdmissionConfig,
    AdmissionController,
    Deadline,
    DeadlineStats,
    HedgeConfig,
    HedgeController,
    ServiceLevel,
)
from ..sim import Environment, Resource
from ..trace.stages import Stage
from .ffu import FfuConfig, FfuDpfRole, QueryWork, SoftwareTimingModel, \
    WorkloadModel


class AccelerationMode(enum.Enum):
    SOFTWARE = "software"
    LOCAL_FPGA = "local_fpga"
    REMOTE_FPGA = "remote_fpga"


@dataclass
class RemoteAccessConfig:
    """Cost of reaching a pooled FPGA over LTL (measured, Fig. 10)."""

    round_trip: float = 2.9e-6           # same-TOR pool locality
    ltl_bandwidth_bps: float = 38e9      # LTL goodput on the 40G port
    per_message_overhead: float = 2.0e-6  # ER + packetization both ends
    #: Tail variability of the remote hop: with this probability a
    #: request lands on a momentarily slow pool FPGA (limplocked peer,
    #: SEU scrub pass, contended DRAM) and takes ``slow_factor`` times
    #: the nominal service time.  Default 0 = the classic deterministic
    #: model; hedging only matters when a tail exists.
    slow_probability: float = 0.0
    slow_factor: float = 1.0


@dataclass
class OverloadConfig:
    """End-to-end overload protection for one ranking server.

    Attach to :class:`RankingServiceConfig` to enable; ``None`` (the
    default) preserves the classic unprotected behavior exactly.

    ``admission_enabled`` / ``deadline_enforcement`` exist so the
    *unprotected* baseline in overload experiments can still stamp
    deadlines and account SLO misses (apples-to-apples goodput) while
    actually shedding or dropping nothing.
    """

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Deadline budget stamped on arrivals that don't carry one.
    default_budget: float = 8e-3
    #: Candidate-set fraction kept at the DEGRADED rung.
    degraded_fraction: float = 0.25
    #: Hedged remote requests (remote mode only); ``None`` disables.
    hedge: Optional[HedgeConfig] = None
    #: Master switch for the shed/degrade ladder.
    admission_enabled: bool = True
    #: Master switch for dropping expired work mid-path.
    deadline_enforcement: bool = True
    #: Cost of a fast rejection (error serialization, connection reset).
    reject_latency: float = 10e-6


@dataclass
class RankingServiceConfig:
    """Everything defining one ranking server's performance."""

    mode: AccelerationMode = AccelerationMode.SOFTWARE
    num_cores: int = 8
    fpga_pipeline_slots: int = 4
    workload: WorkloadModel = field(default_factory=WorkloadModel)
    software: SoftwareTimingModel = field(
        default_factory=SoftwareTimingModel)
    ffu: FfuConfig = field(default_factory=FfuConfig)
    remote: RemoteAccessConfig = field(default_factory=RemoteAccessConfig)
    #: Overload protection; ``None`` = classic unprotected server.
    overload: Optional[OverloadConfig] = None


class RankingServer:
    """One server under a given acceleration mode."""

    def __init__(self, env: Environment, config: RankingServiceConfig,
                 rng: Optional[random.Random] = None):
        self.env = env
        self.config = config
        self.rng = rng or random.Random(0)
        self.cores = Resource(env, capacity=config.num_cores)
        self.role = FfuDpfRole(config.ffu)
        self.fpga_slots = Resource(env, capacity=config.fpga_pipeline_slots)
        self.latency = LatencyRecorder("query")
        self.completed = 0
        #: Is the accelerator reachable?  While False, queries run every
        #: stage on cores — "queries are serviced by software when their
        #: FPGA fails" (§II-B).
        self.fpga_available = True
        self.software_fallbacks = 0

        # Overload protection (None unless configured).
        ov = config.overload
        self.admission: Optional[AdmissionController] = None
        self.hedge: Optional[HedgeController] = None
        self.slo: Optional[SloTracker] = None
        self.deadline_stats = DeadlineStats()
        self.degraded_queries = 0
        self.rejected = 0
        if ov is not None:
            self.admission = AdmissionController(ov.admission,
                                                 start_time=env.now)
            self.slo = SloTracker()
            if ov.hedge is not None:
                self.hedge = HedgeController(ov.hedge)
        #: EWMA of per-grant core hold time, seeding the door-side
        #: queue-delay prediction before any query has been measured.
        self._core_hold_ewma = config.software.pre_seconds

    # ------------------------------------------------------------------
    def _note_core_hold(self, hold: float) -> None:
        self._core_hold_ewma += 0.2 * (hold - self._core_hold_ewma)

    def predicted_core_delay(self) -> float:
        """Instantaneous estimate of the wait a new arrival would see."""
        return (len(self.cores.queue) * self._core_hold_ewma
                / self.config.num_cores)

    # ------------------------------------------------------------------
    def fail_fpga(self) -> None:
        """Accelerator lost: degrade to the software timing model."""
        self.fpga_available = False
        if self.admission is not None:
            self.admission.fpga_healthy = False

    def restore_fpga(self) -> None:
        """Accelerator capacity is back: resume hardware scoring."""
        self.fpga_available = True
        if self.admission is not None:
            self.admission.fpga_healthy = True

    def bind_fpga_health(self, manager: FpgaManager) -> None:
        """Follow an FPGA Manager's health: degrade to software whenever
        the board leaves HEALTHY, restore when it returns."""
        previous = manager.on_health_change

        def chained(fm, old, new, reason):
            if previous is not None:
                previous(fm, old, new, reason)
            if new is FpgaHealth.HEALTHY:
                self.restore_fpga()
            else:
                self.fail_fpga()

        manager.on_health_change = chained
        if manager.health is not FpgaHealth.HEALTHY:
            self.fail_fpga()

    # ------------------------------------------------------------------
    def feature_stage_time(self, work: QueryWork) -> float:
        """Feature-extraction service time in the configured mode."""
        mode = self.config.mode
        if mode is AccelerationMode.SOFTWARE:
            return self.config.software.feature_time(work)
        if mode is AccelerationMode.LOCAL_FPGA:
            return self.role.local_service_time(work)
        return self._remote_base_time(work)

    def _remote_base_time(self, work: QueryWork) -> float:
        remote = self.config.remote
        network = (remote.round_trip
                   + work.document_bytes * 8 / remote.ltl_bandwidth_bps
                   + remote.per_message_overhead)
        return network + self.role.compute_time(work)

    def _remote_sample(self, work: QueryWork) -> float:
        """One draw of the remote hop, including the slow-peer tail."""
        remote = self.config.remote
        base = self._remote_base_time(work)
        if remote.slow_probability > 0.0 and \
                self.rng.random() < remote.slow_probability:
            return base * remote.slow_factor
        return base

    def _remote_feature_time(self, work: QueryWork) -> float:
        """Remote feature extraction, hedged when configured.

        Hedging is modeled at the latency level: the primary and hedge
        are independent draws (different pool FPGAs), the hedge starts
        after the P95-derived delay, and the faster leg wins.  The
        duplicated backend load is bounded by the hedge budget — the
        controller refuses hedges past ``budget_fraction`` of primaries.
        """
        if self.config.mode is not AccelerationMode.REMOTE_FPGA:
            return self.feature_stage_time(work)
        primary = self._remote_sample(work)
        hc = self.hedge
        if hc is None:
            return primary
        hc.on_primary()
        effective = primary
        delay = hc.hedge_delay()
        if delay is not None and primary > delay and hc.try_acquire_hedge():
            hedged = delay + self._remote_sample(work)
            if hedged < primary:
                effective = hedged
                hc.on_win(True)
            else:
                hc.on_win(False)
        hc.observe(effective)
        return effective

    def _expire(self, stage: Stage) -> None:
        self.deadline_stats.drop(stage)
        if self.slo is not None:
            self.slo.expire()

    def handle_query(self, work: Optional[QueryWork] = None):
        """Process: one query through pre -> features -> post.

        With :class:`OverloadConfig` attached this becomes the protected
        path: admission decides shed/degrade on arrival, the measured
        core-queue delay feeds the CoDel controller, and every stage
        boundary drops work whose deadline has already expired.
        """
        if work is None:
            work = self.config.workload.sample(self.rng)
        arrival = self.env.now
        software = self.config.software
        ov = self.config.overload

        deadline: Optional[Deadline] = work.deadline
        enforce = False
        if ov is not None:
            if deadline is None:
                deadline = Deadline.from_budget(arrival, ov.default_budget)
                work.deadline = deadline
            enforce = ov.deadline_enforcement
            if self.slo is not None:
                self.slo.offer(arrival)
            degraded = False
            if ov.admission_enabled and self.admission is not None:
                level = self.admission.admit(
                    arrival, predicted_delay=self.predicted_core_delay())
                if level is ServiceLevel.SHED:
                    # Reject-with-fast-error: the client hears in
                    # microseconds, the server spends ~nothing.
                    self.rejected += 1
                    if self.slo is not None:
                        self.slo.shed_one()
                    yield self.env.timeout(ov.reject_latency)
                    return None
                if level is ServiceLevel.DEGRADED:
                    self.degraded_queries += 1
                    degraded = True
                    work = work.pruned(ov.degraded_fraction)
            if self.slo is not None:
                self.slo.admit(degraded=degraded)

        accelerated = (self.config.mode is not AccelerationMode.SOFTWARE
                       and self.fpga_available)
        if self.config.mode is not AccelerationMode.SOFTWARE \
                and not self.fpga_available:
            self.software_fallbacks += 1
        trace = work.trace
        if not accelerated:
            # The owning thread runs all stages back to back.
            with self.cores.request() as core:
                yield core
                queue_delay = self.env.now - arrival
                if trace is not None:
                    trace.tap(Stage.CORE_QUEUE, self.env.now)
                if self.admission is not None:
                    self.admission.on_queue_delay(queue_delay, self.env.now)
                if enforce and deadline is not None \
                        and deadline.expired(self.env.now):
                    self._expire(Stage.CORE_QUEUE)
                    return None
                hold = (software.pre_time(work)
                        + software.feature_time(work)
                        + software.post_time(work))
                self._note_core_hold(hold)
                yield self.env.timeout(hold)
                if trace is not None:
                    trace.tap(Stage.CORE_SOFTWARE, self.env.now)
        else:
            with self.cores.request() as core:
                yield core
                queue_delay = self.env.now - arrival
                if trace is not None:
                    trace.tap(Stage.CORE_QUEUE, self.env.now)
                if self.admission is not None:
                    self.admission.on_queue_delay(queue_delay, self.env.now)
                if enforce and deadline is not None \
                        and deadline.expired(self.env.now):
                    self._expire(Stage.CORE_QUEUE)
                    return None
                hold = software.pre_time(work)
                self._note_core_hold(hold)
                yield self.env.timeout(hold)
                if trace is not None:
                    trace.tap(Stage.SW_PRE, self.env.now)
            # Core released while the FPGA does the heavy lifting.
            with self.fpga_slots.request() as slot:
                yield slot
                if trace is not None:
                    trace.tap(Stage.FPGA_QUEUE, self.env.now)
                if enforce and deadline is not None \
                        and deadline.expired(self.env.now):
                    self._expire(Stage.FPGA_QUEUE)
                    return None
                yield self.env.timeout(self._remote_feature_time(work)
                                       if self.config.mode
                                       is AccelerationMode.REMOTE_FPGA
                                       else self.feature_stage_time(work))
                if trace is not None:
                    trace.tap(Stage.ROLE_SERVICE, self.env.now)
            with self.cores.request() as core:
                yield core
                if trace is not None:
                    trace.tap(Stage.POST_QUEUE, self.env.now)
                if enforce and deadline is not None \
                        and deadline.expired(self.env.now):
                    self._expire(Stage.POST_QUEUE)
                    return None
                hold = software.post_time(work)
                self._note_core_hold(hold)
                yield self.env.timeout(hold)
                if trace is not None:
                    trace.tap(Stage.SW_POST, self.env.now)

        self.completed += 1
        latency = self.env.now - arrival
        self.latency.record(latency)
        if self.slo is not None:
            missed = deadline is not None and deadline.expired(self.env.now)
            self.slo.complete(self.env.now, missed_deadline=missed)
        return latency


@dataclass
class LoadResult:
    """Outcome of one open-loop run at a fixed arrival rate."""

    offered_qps: float
    achieved_qps: float
    latency: LatencyRecorder

    def row(self) -> Dict[str, float]:
        summary = self.latency.summary()
        summary["offered_qps"] = self.offered_qps
        summary["achieved_qps"] = self.achieved_qps
        return summary


def run_open_loop(config: RankingServiceConfig, arrival_rate_qps: float,
                  num_queries: int = 2000, seed: int = 0,
                  warmup_fraction: float = 0.1) -> LoadResult:
    """Drive one server with Poisson arrivals; collect steady-state latency.

    The first ``warmup_fraction`` of completions is discarded.
    """
    env = Environment()
    rng = random.Random(seed)
    server = RankingServer(env, config, rng=random.Random(seed + 1))
    finish_times: List[float] = []

    def generator(env):
        for _ in range(num_queries):
            env.process(server.handle_query())
            yield env.timeout(rng.expovariate(arrival_rate_qps))

    env.process(generator(env))
    env.run()
    warmup = int(num_queries * warmup_fraction)
    recorder = LatencyRecorder("steady-state")
    recorder.extend(server.latency.samples[warmup:])
    achieved = server.completed / env.now if env.now > 0 else 0.0
    return LoadResult(offered_qps=arrival_rate_qps, achieved_qps=achieved,
                      latency=recorder)


def saturation_qps(config: RankingServiceConfig, seed: int = 0,
                   num_queries: int = 1500) -> float:
    """Estimate a mode's max sustainable throughput (capacity).

    Closed-loop with enormous concurrency ~ work-conserving capacity.
    """
    env = Environment()
    server = RankingServer(env, config, rng=random.Random(seed + 1))

    def closed_loop(env):
        for _ in range(num_queries):
            env.process(server.handle_query())
        yield env.timeout(0)

    env.process(closed_loop(env))
    env.run()
    return server.completed / env.now


def latency_vs_throughput(config: RankingServiceConfig,
                          rates_qps: List[float], num_queries: int = 2000,
                          seed: int = 0) -> List[LoadResult]:
    """Sweep arrival rates, one open-loop run each (Fig. 6's x-axis)."""
    return [run_open_loop(config, rate, num_queries=num_queries,
                          seed=seed + i)
            for i, rate in enumerate(rates_qps)]


# ----------------------------------------------------------------------
# Surge experiments (overload protection)
# ----------------------------------------------------------------------
@dataclass
class SurgePhase:
    """One phase (pre / surge / post) of a surge experiment."""

    name: str
    start: float
    end: float
    #: SLO counter deltas over the phase (see SloTracker.snapshot()).
    slo: Dict[str, int]
    #: Latency of requests *completed* during the phase (admitted only —
    #: shed requests never produce a completion).
    latency: LatencyRecorder

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def goodput_qps(self) -> float:
        """Within-deadline completions per second during the phase."""
        if self.duration <= 0:
            return 0.0
        return self.slo["good"] / self.duration

    @property
    def offered_qps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.slo["offered"] / self.duration


@dataclass
class SurgeResult:
    """Outcome of one flash-crowd run against a ranking server."""

    phases: Dict[str, SurgePhase]
    server: "RankingServer"

    def row(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, phase in self.phases.items():
            out[f"{name}_offered_qps"] = phase.offered_qps
            out[f"{name}_goodput_qps"] = phase.goodput_qps
            if phase.latency.count:
                out[f"{name}_p99"] = phase.latency.p99
        out["rejected"] = float(self.server.rejected)
        out["degraded"] = float(self.server.degraded_queries)
        out["deadline_drops"] = float(self.server.deadline_stats.total)
        if self.server.hedge is not None:
            out["hedge_fraction"] = self.server.hedge.stats.hedge_fraction
        return out


def run_surge(config: RankingServiceConfig, profile,
              duration: Optional[float] = None,
              seed: int = 0) -> SurgeResult:
    """Drive one server through a flash crowd; report per-phase SLO.

    ``profile`` is a :class:`repro.workloads.FlashCrowdProfile` (anything
    with ``rate(t)``, ``peak_qps``, ``surge_start``, ``surge_end`` and
    ``ramp`` works).  The run is split into *pre* (before the surge),
    *surge* and *post* phases; goodput and admitted-latency percentiles
    are accounted per phase by completion time, so the gates of ISSUE 6
    ("goodput under surge >= 85% of pre-surge", "admitted P99 <= 3x
    pre-surge P99") read straight off the result.

    Requires ``config.overload`` — the unprotected baseline is expressed
    as an :class:`OverloadConfig` with ``admission_enabled=False`` and
    ``deadline_enforcement=False``, which stamps deadlines and accounts
    SLO misses without shedding or dropping anything.
    """
    if config.overload is None:
        raise ValueError(
            "run_surge needs config.overload (use admission_enabled=False "
            "for an unprotected-but-accounted baseline)")
    from ..workloads.surge import VariableRateArrivals

    if duration is None:
        duration = profile.surge_end + profile.surge_start
    env = Environment()
    server = RankingServer(env, config, rng=random.Random(seed + 1))
    bounds = [
        ("pre", 0.0, profile.surge_start),
        ("surge", profile.surge_start, profile.surge_end),
        ("post", min(profile.surge_end + profile.ramp, duration), duration),
    ]
    recorders = {name: LatencyRecorder(name) for name, _, _ in bounds}

    def phase_of(t: float) -> Optional[str]:
        for name, start, end in bounds:
            if start <= t < end:
                return name
        return None

    def one_query():
        latency = yield from server.handle_query()
        if latency is not None:
            name = phase_of(env.now)
            if name is not None:
                recorders[name].record(latency)

    def submit() -> None:
        env.process(one_query())

    VariableRateArrivals(
        env, profile.rate, max_rate=profile.peak_qps * 1.001,
        submit=submit, rng=random.Random(seed), until=duration)

    snapshots: Dict[float, Dict[str, int]] = {}
    sample_times = sorted({t for _, start, end in bounds
                           for t in (start, end)})

    def sampler():
        for t in sample_times:
            if t > env.now:
                yield env.timeout(t - env.now)
            snapshots[t] = server.slo.snapshot()

    env.process(sampler(), name="surge-sampler")
    env.run()

    phases: Dict[str, SurgePhase] = {}
    for name, start, end in bounds:
        before = snapshots.get(start, server.slo.snapshot())
        after = snapshots.get(end, server.slo.snapshot())
        delta = {k: after[k] - before[k] for k in after}
        phases[name] = SurgePhase(name=name, start=start, end=end,
                                  slo=delta, latency=recorders[name])
    return SurgeResult(phases=phases, server=server)
