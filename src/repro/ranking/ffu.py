"""The FFU and DPF role models (paper §III-A).

"We implemented the selected features in a Feature Functional Unit (FFU),
and the Dynamic Programming Features in a separate DPF unit."

Functionally these reuse the exact software feature code (hardware
accelerates, it does not change the math).  The value here is the
*timing* model:

* the FFU streams document terms through parallel FSM lanes (one term per
  lane per cycle),
* the DPF evaluates DP cells on a systolic array (many cells per cycle),
* documents reach the FPGA over PCIe DMA (local) or LTL (remote).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from ..overload.deadline import Deadline
from .corpus import Document, Query
from .features import FeatureExtractor, FeatureVector


@dataclass
class QueryWork:
    """The size of one query's feature-extraction job."""

    num_docs: int
    total_terms: int
    query_terms: int
    #: Latency budget riding with the query (see :mod:`repro.overload`);
    #: ``None`` means the query is not under deadline control.
    deadline: Optional[Deadline] = None
    #: Optional :class:`repro.trace.TraceContext` riding the query
    #: through the ranking pipeline's stage taps.
    trace: Any = None

    @property
    def dp_cells(self) -> int:
        # Two quadratic DPs (alignment + LCS) and one linear pass.
        return 2 * self.query_terms * self.total_terms + self.total_terms

    @property
    def document_bytes(self) -> int:
        return 4 * self.total_terms

    def pruned(self, fraction: float) -> "QueryWork":
        """Brownout: the same query over a pruned candidate set.

        Degraded service keeps the best-ranked ``fraction`` of candidate
        documents (candidate selection already ordered them), trading
        result quality for a proportionally smaller feature job.
        """
        if not 0 < fraction <= 1:
            raise ValueError("pruning fraction must be in (0, 1]")
        return QueryWork(
            num_docs=max(1, int(self.num_docs * fraction)),
            total_terms=max(1, int(self.total_terms * fraction)),
            query_terms=self.query_terms,
            deadline=self.deadline,
            trace=self.trace)


@dataclass
class WorkloadModel:
    """Distribution of query work sizes (post-selection candidate sets)."""

    mean_docs: float = 200.0
    docs_sigma: float = 0.35
    mean_terms_per_doc: float = 300.0
    terms_sigma: float = 0.3
    mean_query_terms: float = 3.2

    def sample(self, rng: random.Random) -> QueryWork:
        num_docs = max(10, int(rng.lognormvariate(
            math.log(self.mean_docs), self.docs_sigma)))
        terms_per_doc = max(30, rng.lognormvariate(
            math.log(self.mean_terms_per_doc), self.terms_sigma))
        query_terms = max(2, min(8, int(rng.gauss(
            self.mean_query_terms, 0.9))))
        return QueryWork(num_docs=num_docs,
                         total_terms=int(num_docs * terms_per_doc),
                         query_terms=query_terms)


@dataclass
class FfuConfig:
    """Hardware parameters of the FFU + DPF role."""

    clock_hz: float = 175e6        # role clock (Fig. 5)
    fsm_lanes: int = 16            # parallel document streams
    dp_cells_per_cycle: int = 4096  # systolic DPF throughput
    #: Fixed role overhead per query (setup, result gather).
    per_query_overhead: float = 5e-6
    #: Effective PCIe bandwidth for streaming candidates (one Gen3 x8).
    pcie_bandwidth_bytes: float = 6.8e9
    pcie_setup: float = 0.9e-6


class FfuDpfRole:
    """Timing + functional model of the combined FFU/DPF role."""

    def __init__(self, config: Optional[FfuConfig] = None):
        self.config = config or FfuConfig()
        self.queries_processed = 0

    # -- timing -----------------------------------------------------------
    def compute_time(self, work: QueryWork) -> float:
        """On-FPGA processing time for one query's candidates."""
        cfg = self.config
        fsm = work.total_terms / (cfg.fsm_lanes * cfg.clock_hz)
        dpf = work.dp_cells / (cfg.dp_cells_per_cycle * cfg.clock_hz)
        return cfg.per_query_overhead + fsm + dpf

    def transfer_time(self, work: QueryWork) -> float:
        """PCIe DMA time to stream candidates into the role."""
        cfg = self.config
        return cfg.pcie_setup + work.document_bytes / cfg.pcie_bandwidth_bytes

    def local_service_time(self, work: QueryWork) -> float:
        """Local acceleration: DMA in (+ compute overlapped tail)."""
        # Transfer and compute are pipelined; the slower one dominates,
        # plus a fill term for the other.
        transfer = self.transfer_time(work)
        compute = self.compute_time(work)
        return max(transfer, compute) + 0.15 * min(transfer, compute)

    # -- function -----------------------------------------------------------
    def extract(self, query: Query,
                documents: Sequence[Document]) -> List[FeatureVector]:
        """Bit-accurate output: same features software would compute."""
        self.queries_processed += 1
        extractor = FeatureExtractor(query)
        return extractor.extract_all(documents)


@dataclass
class SoftwareTimingModel:
    """Costs of running the same stages on host cores (2.4 GHz class).

    Per-term and per-cell constants reflect a tuned production C++
    implementation, not CPython.
    """

    fsm_seconds_per_term: float = 3.0e-9
    dp_seconds_per_cell: float = 0.8e-9
    #: Query parse / candidate selection before features.
    pre_seconds: float = 0.15e-3
    #: ML scoring + result assembly after features.
    post_seconds_per_doc: float = 1.3e-6
    post_seconds_fixed: float = 0.05e-3

    def feature_time(self, work: QueryWork) -> float:
        return work.total_terms * self.fsm_seconds_per_term \
            + work.dp_cells * self.dp_seconds_per_cell

    def pre_time(self, _work: QueryWork) -> float:
        return self.pre_seconds

    def post_time(self, work: QueryWork) -> float:
        return self.post_seconds_fixed \
            + work.num_docs * self.post_seconds_per_doc
