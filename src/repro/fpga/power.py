"""Board power model and the power virus (paper §II).

"To measure the power consumption limits of the entire FPGA card
(including DRAM, I/O channels, and PCIe), we developed a power virus that
exercises nearly all of the FPGA's interfaces, logic, and DSP blocks —
while running the card in a thermal chamber operating in worst-case
conditions (peak ambient temperature, high CPU load, and minimum airflow
due to a failed fan).  Under these conditions, the card consumes 29.2 W,
which is well within the 32 W TDP limits ... and below the max electrical
power draw limit of 35 W."

The model decomposes card power into static leakage (temperature
dependent) plus per-subsystem dynamic power scaled by utilization, tuned
so the power virus lands at 29.2 W under worst-case conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .board import BoardSpec


@dataclass
class ThermalConditions:
    """Environment the card operates in."""

    inlet_temp_c: float = 35.0
    airflow_lfm: float = 160.0
    #: Host CPU load raises local ambient inside the chassis.
    cpu_load: float = 0.5

    @classmethod
    def worst_case(cls) -> "ThermalConditions":
        """Thermal-chamber conditions from the paper's power-virus test."""
        return cls(inlet_temp_c=70.0, airflow_lfm=80.0, cpu_load=1.0)


@dataclass
class PowerModel:
    """Per-subsystem power decomposition (watts at full utilization).

    The split across subsystems reflects typical Stratix V-class boards:
    core logic/DSP dominates, transceivers (2x40G + 2xPCIe x8) and DRAM
    follow.  Calibrated so worst-case full-utilization total = 29.2 W.
    """

    static_base_w: float = 4.1
    #: Additional leakage per degree C of junction temp above 40 C.
    leakage_w_per_c: float = 0.055
    logic_w: float = 9.65
    dsp_w: float = 3.0
    bram_w: float = 2.2
    transceivers_w: float = 3.6
    dram_w: float = 2.4
    pcie_w: float = 1.4
    misc_w: float = 0.7  # flash, uC, LEDs, regulators' loss

    def junction_temp_c(self, conditions: ThermalConditions,
                        dynamic_w: float) -> float:
        """Junction temperature: inlet + airflow-dependent rise."""
        # Thermal resistance worsens as airflow drops below nominal.
        theta = 0.8 * (160.0 / max(conditions.airflow_lfm, 40.0)) ** 0.5
        ambient = conditions.inlet_temp_c + 3.0 * conditions.cpu_load
        return ambient + theta * dynamic_w

    def power_w(self, utilization: Dict[str, float],
                conditions: ThermalConditions) -> float:
        """Total card power for per-subsystem utilizations in [0, 1]."""
        for key, value in utilization.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"utilization {key}={value} outside [0,1]")
        dynamic = (
            self.logic_w * utilization.get("logic", 0.0)
            + self.dsp_w * utilization.get("dsp", 0.0)
            + self.bram_w * utilization.get("bram", 0.0)
            + self.transceivers_w * utilization.get("transceivers", 0.0)
            + self.dram_w * utilization.get("dram", 0.0)
            + self.pcie_w * utilization.get("pcie", 0.0)
            + self.misc_w)
        tj = self.junction_temp_c(conditions, dynamic)
        leakage = self.static_base_w + self.leakage_w_per_c * max(
            0.0, tj - 40.0)
        return dynamic + leakage


#: Utilization profile of the power virus: "exercises nearly all of the
#: FPGA's interfaces, logic, and DSP blocks".
POWER_VIRUS_UTILIZATION: Dict[str, float] = {
    "logic": 0.95,
    "dsp": 0.98,
    "bram": 0.9,
    "transceivers": 1.0,
    "dram": 0.95,
    "pcie": 0.9,
}

#: Typical utilization while running the ranking role plus bridge traffic.
RANKING_ROLE_UTILIZATION: Dict[str, float] = {
    "logic": 0.45,
    "dsp": 0.3,
    "bram": 0.5,
    "transceivers": 0.6,
    "dram": 0.35,
    "pcie": 0.4,
}


def power_virus_power_w(model: PowerModel | None = None,
                        spec: BoardSpec | None = None) -> float:
    """Power-virus draw under worst-case thermal-chamber conditions."""
    model = model or PowerModel()
    return model.power_w(POWER_VIRUS_UTILIZATION,
                         ThermalConditions.worst_case())


def validate_envelope(spec: BoardSpec | None = None,
                      model: PowerModel | None = None) -> Dict[str, float]:
    """The §II power check: virus draw vs TDP and electrical limits."""
    spec = spec or BoardSpec()
    draw = power_virus_power_w(model, spec)
    return {
        "power_virus_w": draw,
        "tdp_w": spec.tdp_w,
        "max_power_w": spec.max_power_w,
        "within_tdp": draw <= spec.tdp_w,
        "within_electrical_limit": draw <= spec.max_power_w,
    }
