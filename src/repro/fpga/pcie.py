"""PCIe Gen3 x8 DMA engine model.

The board exposes "two independent PCIe Gen 3 x8 connections for an
aggregate total of 16 GB/s in each direction between the CPU and FPGA."
Keeping the FPGA's PCIe independent of the NIC's "allows each to operate
independently at maximum bandwidth when the FPGA is being used strictly
as a local compute accelerator."

The DMA engine models transfer latency = setup + payload/bandwidth, with
a bounded number of in-flight transfers per link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment, Resource
from .board import BoardSpec


@dataclass
class PcieConfig:
    """Timing/efficiency parameters of one DMA link."""

    #: Software+hardware setup cost per DMA transfer (doorbell, descriptor
    #: fetch, completion interrupt amortization).
    setup_latency: float = 0.9e-6
    #: Protocol efficiency on top of the 128b/130b line rate (TLP headers,
    #: flow-control DLLPs): ~87% payload efficiency for 256 B MPS.
    protocol_efficiency: float = 0.87
    #: Simultaneous outstanding DMA transfers per link.
    max_outstanding: int = 16


class PcieDmaEngine:
    """One of the board's two independent Gen3 x8 DMA connections."""

    def __init__(self, env: Environment, spec: Optional[BoardSpec] = None,
                 config: Optional[PcieConfig] = None, name: str = "pcie0"):
        self.env = env
        self.spec = spec or BoardSpec()
        self.config = config or PcieConfig()
        self.name = name
        self._channel = Resource(env, capacity=self.config.max_outstanding)
        self.transfers = 0
        self.bytes_moved = 0

    @property
    def effective_bandwidth_bytes(self) -> float:
        return (self.spec.pcie_bandwidth_per_link_bytes
                * self.config.protocol_efficiency)

    def transfer_time(self, nbytes: int) -> float:
        """Latency of one DMA of ``nbytes`` (excluding queueing)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        return self.config.setup_latency + \
            nbytes / self.effective_bandwidth_bytes

    def dma(self, nbytes: int):
        """Process: perform one transfer (host->FPGA or FPGA->host)."""
        with self._channel.request() as slot:
            yield slot
            yield self.env.timeout(self.transfer_time(nbytes))
        self.transfers += 1
        self.bytes_moved += nbytes
