"""The accelerator board (paper Fig. 2/3).

A standalone FPGA card in the PCIe expansion slot of an OpenCompute
server: Altera Stratix V D5, one 4 GB DDR3-1600 channel with ECC, two
independent PCIe Gen3 x8 connections (16 GB/s aggregate each direction),
two 40 GbE QSFP+ ports (one cabled to the NIC, one to the TOR), and a
256 Mb configuration flash holding the golden image plus one application
image.

Physical constraints: half-height half-length card (80 mm x 140 mm),
35 W max electrical draw, 32 W TDP, inlet air up to 70 C at 160 lfm.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BoardSpec:
    """Static capabilities and limits of the manufactured board."""

    fpga_family: str = "Altera Stratix V D5"
    alms: int = 172_600
    dram_bytes: int = 4 * 1024 ** 3
    dram_standard: str = "DDR3-1600"
    dram_bus_bits: int = 72  # 64 data + 8 ECC
    flash_bits: int = 256 * 1024 ** 2
    pcie_links: int = 2
    pcie_gen: int = 3
    pcie_lanes_per_link: int = 8
    ethernet_ports: int = 2
    ethernet_rate_bps: float = 40e9
    # Power / thermal envelope.
    max_power_w: float = 35.0
    tdp_w: float = 32.0
    inlet_temp_limit_c: float = 70.0
    airflow_lfm: float = 160.0
    # Physical size (half-height, half-length PCIe card).
    width_mm: float = 80.0
    length_mm: float = 140.0

    @property
    def pcie_bandwidth_per_link_bytes(self) -> float:
        """Usable bandwidth of one Gen3 x8 link, bytes/second.

        Gen3 runs 8 GT/s with 128b/130b encoding: ~985 MB/s per lane raw;
        ~7.88 GB/s per x8 link before protocol overhead.
        """
        per_lane = 8e9 * (128 / 130) / 8
        return per_lane * self.pcie_lanes_per_link

    @property
    def pcie_aggregate_bandwidth_bytes(self) -> float:
        """Aggregate CPU<->FPGA bandwidth, each direction (~16 GB/s)."""
        return self.pcie_bandwidth_per_link_bytes * self.pcie_links

    @property
    def dram_peak_bandwidth_bytes(self) -> float:
        """DDR3-1600 on a 64-bit data bus: 12.8 GB/s peak."""
        return 1600e6 * 8


@dataclass
class BoardHealth:
    """Mutable health state used by the deployment/failure models."""

    seu_flips_detected: int = 0
    seu_flips_corrected: int = 0
    dram_calibration_failures: int = 0
    pcie_training_failures: int = 0
    nic_link_unstable: bool = False
    tor_link_unstable: bool = False
    hard_failed: bool = False
    failure_reason: str = ""


@dataclass
class Board:
    """One physical card instance: spec + serial + health."""

    serial: int
    spec: BoardSpec = field(default_factory=BoardSpec)
    health: BoardHealth = field(default_factory=BoardHealth)

    def mark_hard_failure(self, reason: str) -> None:
        self.health.hard_failed = True
        self.health.failure_reason = reason

    @property
    def usable(self) -> bool:
        return not self.health.hard_failed
