"""Shell area and frequency budget (paper Fig. 5).

The production-deployed image on the Altera Stratix V D5 (172,600 ALMs)
uses 76% of the device: 44% for shell functions (including LTL and the
Elastic Router, i.e. remote-acceleration support) and 32% for the role.
The table below reproduces Fig. 5's per-component ALM counts; the listed
frequencies come from the figure's clock column (the role runs at 175 MHz,
the 40G datapath at 313 MHz, PCIe DMA at 250 MHz).

Summary invariants stated in the text and checked by the test suite:

* 40G PHY/MACs together: 14% of the device,
* DDR3 memory controller: 8%,
* LTL: 7%, Elastic Router: 2%,
* shell total: 44%; total used: 131,350 ALMs (76%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Total ALMs available on the Stratix V D5.
TOTAL_ALMS = 172_600


@dataclass(frozen=True)
class AreaEntry:
    """One row of the Fig. 5 breakdown."""

    name: str
    alms: int
    freq_mhz: float
    is_shell: bool

    @property
    def fraction(self) -> float:
        return self.alms / TOTAL_ALMS


#: The production image breakdown, per Fig. 5.
PRODUCTION_IMAGE: List[AreaEntry] = [
    AreaEntry("Role", 55_340, 175.0, is_shell=False),
    AreaEntry("40G MAC/PHY (TOR)", 9_785, 313.0, is_shell=True),
    AreaEntry("40G MAC/PHY (NIC)", 13_122, 313.0, is_shell=True),
    AreaEntry("Network Bridge / Bypass", 4_685, 313.0, is_shell=True),
    AreaEntry("DDR3 Memory Controller", 13_225, 200.0, is_shell=True),
    AreaEntry("Elastic Router", 3_449, 175.0, is_shell=True),
    AreaEntry("LTL Protocol Engine", 11_839, 156.0, is_shell=True),
    AreaEntry("LTL Packet Switch", 4_815, 156.0, is_shell=True),
    AreaEntry("PCIe Gen3 DMA x 2", 6_817, 250.0, is_shell=True),
    AreaEntry("Other shell", 8_273, 156.0, is_shell=True),
]


class AreaBudget:
    """Area accounting for an FPGA image: shell entries + role demand.

    Used both to regenerate Fig. 5 and to validate that a proposed role
    (e.g. the ranking FFU+DPF or the crypto engine) fits next to a chosen
    shell variant.  Shell variants matter because "services using only
    their single local FPGA can choose to deploy a shell version without
    the LTL block".
    """

    def __init__(self, entries: List[AreaEntry] | None = None,
                 total_alms: int = TOTAL_ALMS):
        self.total_alms = total_alms
        self.entries: List[AreaEntry] = list(
            PRODUCTION_IMAGE if entries is None else entries)

    # -- queries ---------------------------------------------------------
    def entry(self, name: str) -> AreaEntry:
        for item in self.entries:
            if item.name == name:
                return item
        raise KeyError(f"no area entry named {name!r}")

    @property
    def used_alms(self) -> int:
        return sum(e.alms for e in self.entries)

    @property
    def shell_alms(self) -> int:
        return sum(e.alms for e in self.entries if e.is_shell)

    @property
    def role_alms(self) -> int:
        return sum(e.alms for e in self.entries if not e.is_shell)

    @property
    def free_alms(self) -> int:
        return self.total_alms - self.used_alms

    @property
    def used_fraction(self) -> float:
        return self.used_alms / self.total_alms

    @property
    def shell_fraction(self) -> float:
        return self.shell_alms / self.total_alms

    def fraction_of(self, *names: str) -> float:
        return sum(self.entry(n).alms for n in names) / self.total_alms

    # -- image composition -------------------------------------------------
    def without(self, *names: str) -> "AreaBudget":
        """A variant image dropping the named blocks (e.g. no-LTL shell)."""
        remaining = [e for e in self.entries if e.name not in names]
        missing = set(names) - {e.name for e in self.entries}
        if missing:
            raise KeyError(f"cannot drop unknown blocks: {sorted(missing)}")
        return AreaBudget(remaining, self.total_alms)

    def with_role(self, name: str, alms: int,
                  freq_mhz: float = 175.0) -> "AreaBudget":
        """Replace the role with a differently-sized one."""
        entries = [e for e in self.entries if e.is_shell]
        entries.insert(0, AreaEntry(name, alms, freq_mhz, is_shell=False))
        budget = AreaBudget(entries, self.total_alms)
        if budget.used_alms > self.total_alms:
            raise ValueError(
                f"role {name!r} ({alms} ALMs) does not fit: "
                f"{budget.used_alms} > {self.total_alms}")
        return budget

    def rows(self) -> List[Dict[str, object]]:
        """Fig. 5-shaped rows for reporting."""
        out = []
        for e in self.entries:
            out.append({
                "component": e.name,
                "alms": e.alms,
                "percent": round(100 * e.fraction),
                "freq_mhz": e.freq_mhz,
                "shell": e.is_shell,
            })
        out.append({"component": "Total Area Used", "alms": self.used_alms,
                    "percent": round(100 * self.used_fraction),
                    "freq_mhz": None, "shell": None})
        out.append({"component": "Total Area Available",
                    "alms": self.total_alms, "percent": 100,
                    "freq_mhz": None, "shell": None})
        return out
