"""DDR3-1600 memory controller model with ECC.

One 4 GB channel, 72-bit bus (64 data + 8 ECC), 12.8 GB/s peak.  The
deployment study (§II-B) found eight DRAM calibration failures that were
"repaired by reconfiguring the FPGA" and later "traced to a logical error
in the DRAM interface rather than a hard failure" — the model exposes
calibration as an explicit step that can fail and be retried.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..sim import Environment, Resource
from .board import BoardSpec


@dataclass
class DdrConfig:
    """Controller timing (CAS-ish aggregate latencies, not per-command)."""

    #: Closed-page random access latency seen by a role.
    access_latency: float = 0.12e-6
    #: Controller efficiency vs peak bandwidth for streaming access.
    streaming_efficiency: float = 0.83
    #: Probability one calibration attempt fails (the §II-B logic bug).
    calibration_failure_probability: float = 8.0 / 5760.0
    #: Time to run DRAM interface calibration at configuration load.
    calibration_time: float = 0.5
    #: Outstanding requests the controller pipelines.
    max_outstanding: int = 32


class DdrController:
    """The shell's DDR3 controller, one per board."""

    def __init__(self, env: Environment, spec: Optional[BoardSpec] = None,
                 config: Optional[DdrConfig] = None,
                 rng: Optional[random.Random] = None):
        self.env = env
        self.spec = spec or BoardSpec()
        self.config = config or DdrConfig()
        self.rng = rng or random.Random(0)
        self._channel = Resource(env, capacity=self.config.max_outstanding)
        self.calibrated = False
        self.calibration_attempts = 0
        self.calibration_failures = 0
        self.reads = 0
        self.writes = 0
        self.bytes_moved = 0
        self.ecc_corrections = 0

    @property
    def effective_bandwidth_bytes(self) -> float:
        return (self.spec.dram_peak_bandwidth_bytes
                * self.config.streaming_efficiency)

    def calibrate(self):
        """Process: run interface calibration; may fail (retry by
        reconfiguring, exactly as operations did in §II-B)."""
        self.calibration_attempts += 1
        yield self.env.timeout(self.config.calibration_time)
        if self.rng.random() < self.config.calibration_failure_probability:
            self.calibration_failures += 1
            self.calibrated = False
        else:
            self.calibrated = True
        return self.calibrated

    def _access_time(self, nbytes: int) -> float:
        return self.config.access_latency + \
            nbytes / self.effective_bandwidth_bytes

    def read(self, nbytes: int):
        """Process: one read burst of ``nbytes``."""
        if not self.calibrated:
            raise RuntimeError("DRAM access before successful calibration")
        with self._channel.request() as slot:
            yield slot
            yield self.env.timeout(self._access_time(nbytes))
        self.reads += 1
        self.bytes_moved += nbytes

    def write(self, nbytes: int):
        """Process: one write burst of ``nbytes``."""
        if not self.calibrated:
            raise RuntimeError("DRAM access before successful calibration")
        with self._channel.request() as slot:
            yield slot
            yield self.env.timeout(self._access_time(nbytes))
        self.writes += 1
        self.bytes_moved += nbytes
