"""FPGA board and shell models (paper §II, Figs. 2-5).

The shell (:class:`~repro.fpga.shell.Shell`) is the per-server composition
of bridge, MACs, Elastic Router, LTL engine, PCIe DMA, DDR3 controller,
configuration manager and SEU scrubber; the other modules model the board
itself, its area/power budgets, and its failure modes.
"""

from .area import PRODUCTION_IMAGE, TOTAL_ALMS, AreaBudget, AreaEntry
from .board import Board, BoardHealth, BoardSpec
from .bridge import BRIDGE_LATENCY_SECONDS, Bridge, BridgeStats
from .ddr import DdrConfig, DdrController
from .pcie import PcieConfig, PcieDmaEngine
from .power import (
    POWER_VIRUS_UTILIZATION,
    RANKING_ROLE_UTILIZATION,
    PowerModel,
    ThermalConditions,
    power_virus_power_w,
    validate_envelope,
)
from .reconfig import (
    FULL_RECONFIG_SECONDS,
    GOLDEN_IMAGE,
    PARTIAL_RECONFIG_SECONDS,
    ConfigurationError,
    ConfigurationManager,
    Image,
)
from .seu import (
    MEAN_SECONDS_BETWEEN_FLIPS,
    SCRUB_PERIOD_SECONDS,
    SeuEvent,
    SeuScrubber,
    SeuStats,
    expected_flips,
)
from .shell import (
    ER_PORT_DMA,
    ER_PORT_DRAM,
    ER_PORT_REMOTE,
    ER_PORT_ROLE,
    FabricLtlTransport,
    RemoteEnvelope,
    RemoteMessage,
    Shell,
    ShellConfig,
)

__all__ = [
    "AreaBudget",
    "AreaEntry",
    "BRIDGE_LATENCY_SECONDS",
    "Board",
    "BoardHealth",
    "BoardSpec",
    "Bridge",
    "BridgeStats",
    "ConfigurationError",
    "ConfigurationManager",
    "DdrConfig",
    "DdrController",
    "ER_PORT_DMA",
    "ER_PORT_DRAM",
    "ER_PORT_REMOTE",
    "ER_PORT_ROLE",
    "FULL_RECONFIG_SECONDS",
    "FabricLtlTransport",
    "GOLDEN_IMAGE",
    "Image",
    "MEAN_SECONDS_BETWEEN_FLIPS",
    "PARTIAL_RECONFIG_SECONDS",
    "POWER_VIRUS_UTILIZATION",
    "PRODUCTION_IMAGE",
    "PcieConfig",
    "PcieDmaEngine",
    "PowerModel",
    "RANKING_ROLE_UTILIZATION",
    "RemoteEnvelope",
    "RemoteMessage",
    "SCRUB_PERIOD_SECONDS",
    "SeuEvent",
    "SeuScrubber",
    "SeuStats",
    "Shell",
    "ShellConfig",
    "ThermalConditions",
    "TOTAL_ALMS",
    "expected_flips",
    "power_virus_power_w",
    "validate_envelope",
]
