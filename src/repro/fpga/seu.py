"""Single-event-upset (SEU) model and configuration scrubbing.

Paper §II-B: "Our shell scrubs the configuration state for soft errors and
reports any flipped bits.  We measured an average rate of one bit-flip in
the configuration logic every 1025 machine days. ... Since the scrubbing
logic completes roughly every 30 seconds, our system recovers from hung
roles automatically."

The model: flips arrive as a Poisson process at the measured rate.  Each
flip is detected by the next scrub pass; most are corrected transparently,
a small fraction hangs the role until the scrub-triggered recovery
completes (the paper observed at least one such hang).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim import Environment

#: Mean time between configuration bit flips, per machine (seconds).
MEAN_SECONDS_BETWEEN_FLIPS = 1025 * 24 * 3600.0
#: Scrub pass period.
SCRUB_PERIOD_SECONDS = 30.0
#: Fraction of flips that hang the role before the scrubber catches them.
ROLE_HANG_PROBABILITY = 0.02


@dataclass
class SeuEvent:
    """One configuration upset and its resolution."""

    occurred_at: float
    detected_at: float = -1.0
    corrected: bool = False
    caused_role_hang: bool = False


@dataclass
class SeuStats:
    flips: int = 0
    detected: int = 0
    corrected: int = 0
    role_hangs: int = 0
    recoveries: int = 0


class SeuScrubber:
    """Per-FPGA SEU injection + scrubbing loop."""

    def __init__(self, env: Environment, rng: Optional[random.Random] = None,
                 mean_seconds_between_flips: float =
                 MEAN_SECONDS_BETWEEN_FLIPS,
                 scrub_period: float = SCRUB_PERIOD_SECONDS,
                 role_hang_probability: float = ROLE_HANG_PROBABILITY):
        self.env = env
        self.rng = rng or random.Random(0)
        self.mean_seconds_between_flips = mean_seconds_between_flips
        self.scrub_period = scrub_period
        self.role_hang_probability = role_hang_probability
        self.stats = SeuStats()
        self.events: List[SeuEvent] = []
        self._pending: List[SeuEvent] = []
        self.role_hung = False
        #: Called with the event when a hang is recovered by scrubbing.
        self.on_recovery: Optional[Callable[[SeuEvent], None]] = None
        env.process(self._flip_injector(), name="seu-injector")
        env.process(self._scrub_loop(), name="seu-scrubber")

    def inject_flip(self, role_hang: bool = False) -> SeuEvent:
        """Force one upset now (fault-injection hook); returns the event."""
        event = SeuEvent(occurred_at=self.env.now)
        self.stats.flips += 1
        if role_hang:
            event.caused_role_hang = True
            self.role_hung = True
            self.stats.role_hangs += 1
        self.events.append(event)
        self._pending.append(event)
        return event

    def _flip_injector(self):
        while True:
            wait = self.rng.expovariate(
                1.0 / self.mean_seconds_between_flips)
            yield self.env.timeout(wait)
            event = SeuEvent(occurred_at=self.env.now)
            self.stats.flips += 1
            if self.rng.random() < self.role_hang_probability:
                event.caused_role_hang = True
                self.role_hung = True
                self.stats.role_hangs += 1
            self.events.append(event)
            self._pending.append(event)

    def _scrub_loop(self):
        while True:
            yield self.env.timeout(self.scrub_period)
            for event in self._pending:
                event.detected_at = self.env.now
                event.corrected = True
                self.stats.detected += 1
                self.stats.corrected += 1
                if event.caused_role_hang:
                    self.stats.recoveries += 1
                    self.role_hung = False
                    if self.on_recovery is not None:
                        self.on_recovery(event)
            self._pending.clear()


def expected_flips(machines: int, days: float) -> float:
    """Expected fleet-wide flips over an observation window."""
    return machines * days / 1025.0
