"""The Shell: everything on the FPGA that is not the role (paper Fig. 4).

One :class:`Shell` per server wires together:

* the NIC<->TOR **bridge** with its role tap (bump-in-the-wire),
* two 40G **MAC/PHY** models (fixed pipeline latencies),
* the **Elastic Router** with the paper's example 4-port single-role
  configuration: PCIe DMA, Role, DRAM, Remote (LTL),
* the **LTL protocol engine**, whose transport encapsulates frames in
  UDP/IPv4 on the lossless traffic class and injects them at the
  TOR-facing port,
* the **PCIe DMA** engines and **DDR3 controller**,
* the **configuration manager** (golden image, reconfig) and the
  **SEU scrubber**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..ltl.engine import LtlConfig, LtlEngine, connect_pair
from ..ltl.frames import LTL_UDP_PORT, LtlFrame
from ..net.fabric import Attachment, DatacenterFabric
from ..net.packet import Packet, TrafficClass
from ..router.elastic_router import ElasticRouter
from ..sim import Environment, RandomStreams
from ..trace.stages import Stage
from .board import Board
from .bridge import Bridge
from .ddr import DdrController
from .pcie import PcieDmaEngine
from .reconfig import ConfigurationManager, Image
from .seu import SeuScrubber

# Elastic Router port map for the example single-role deployment (§V-B):
# "the ER is instantiated with 4 ports: (1) PCIe DMA, (2) Role, (3) DRAM,
# and (4) Remote (to LTL)".  Fig. 4 shows "Role x N": additional roles
# occupy ports 4, 5, ... (see :meth:`Shell.role_port`).
ER_PORT_DMA = 0
ER_PORT_ROLE = 1
ER_PORT_DRAM = 2
ER_PORT_REMOTE = 3

# Hoisted Stage members: the datapath taps run per packet, and an enum
# attribute lookup (descriptor + dict probe) per tap is measurable there.
_STAGE_LINK_WIRE = Stage.LINK_WIRE
_STAGE_SHELL_MAC_RX = Stage.SHELL_MAC_RX
_STAGE_SHELL_MAC_TX = Stage.SHELL_MAC_TX


@dataclass
class ShellConfig:
    """Shell build options."""

    #: 40G MAC+PHY pipeline latencies, one traversal.
    mac_tx_latency: float = 0.18e-6
    mac_rx_latency: float = 0.18e-6
    #: Deploy the LTL block?  "Services using only their single local FPGA
    #: can choose to deploy a shell version without the LTL block."
    with_ltl: bool = True
    ltl: LtlConfig = field(default_factory=LtlConfig)
    #: Traffic class LTL frames ride on.  Production uses the lossless
    #: (PFC-protected) class; the A2 ablation compares best-effort.
    ltl_traffic_class: int = TrafficClass.LOSSLESS
    #: Number of role slots on the ER ("Role x N" in Fig. 4).
    num_roles: int = 1
    #: Elastic Router sizing.
    er_num_vcs: int = 2
    er_credits_per_port: int = 16
    er_credit_policy: str = "elastic"
    #: Enable the SEU injection/scrubbing model (off by default: most
    #: experiments run for simulated milliseconds where SEUs are noise).
    enable_seu: bool = False


@dataclass
class RemoteEnvelope:
    """ER message bound for another FPGA through the Remote (LTL) port."""

    dst_host: int
    payload: Any
    #: Role slot addressed on the destination FPGA.
    dst_role: int = 0
    #: Absolute deadline of the carried request (seconds), or ``None``.
    deadline: Optional[float] = None
    #: Optional :class:`repro.trace.TraceContext` riding the request.
    trace: Any = None


@dataclass
class RemoteMessage:
    """What actually rides the LTL connection between two shells."""

    dst_role: int
    payload: Any
    #: Absolute deadline, mirrored into the LTL frame headers.
    deadline: Optional[float] = None
    #: Trace context carried across so the receiving shell's ER and role
    #: taps continue the same span.
    trace: Any = None


class FabricLtlTransport:
    """LTL transport over the shell's TOR-facing 40G MAC + the fabric."""

    def __init__(self, shell: "Shell"):
        self.shell = shell

    def send_frame(self, dst_host: int, frame: LtlFrame) -> None:
        shell = self.shell
        shell.env.call_later(
            shell.config.mac_tx_latency, self._inject, dst_host, frame)

    def _inject(self, dst_host: int, frame: LtlFrame) -> None:
        shell = self.shell
        packet = shell.attachment.make_packet(
            dst_index=dst_host, payload=frame,
            payload_bytes=frame.wire_bytes,
            src_port=LTL_UDP_PORT, dst_port=LTL_UDP_PORT,
            traffic_class=shell.config.ltl_traffic_class)
        # The frame's trace context rides the packet so switch/link tap
        # points along the fabric see it (ACKs/NACKs carry none).
        packet.trace = frame.trace
        shell.bridge.inject_to_tor(packet)


class Shell:
    """One FPGA board's shell instance, attached to the fabric."""

    def __init__(self, env: Environment, host_index: int,
                 fabric: DatacenterFabric,
                 config: Optional[ShellConfig] = None,
                 streams: Optional[RandomStreams] = None,
                 image: Optional[Image] = None):
        self.env = env
        self.host_index = host_index
        self.fabric = fabric
        self.config = config or ShellConfig()
        streams = streams or RandomStreams(seed=host_index)
        self.board = Board(serial=host_index)

        # Configuration + health.
        self.configuration = ConfigurationManager(env, application_image=image)
        self.configuration.on_link_change = self._on_link_change
        self.scrubber: Optional[SeuScrubber] = None
        if self.config.enable_seu:
            self.scrubber = SeuScrubber(
                env, rng=streams.stream("seu"))

        # Bridge between NIC and TOR (the bump in the wire).
        self.bridge = Bridge(env)
        self.bridge.deliver_to_tor = self._mac_to_tor
        self.bridge.deliver_to_nic = self._deliver_to_host_nic

        # Network attachment (TOR-facing QSFP).
        self.attachment: Attachment = fabric.attach(
            host_index, self._receive_from_tor)

        # Host NIC delivery callback, set by the owning server.
        self.nic_receive: Optional[Callable[[Packet], None]] = None

        # On-chip interconnect: 4 base ports + one per additional role.
        if self.config.num_roles < 1:
            raise ValueError("shell needs at least one role slot")
        num_ports = 4 + (self.config.num_roles - 1)
        self.er = ElasticRouter(
            env, name=f"er-{host_index}", num_ports=num_ports,
            num_vcs=self.config.er_num_vcs,
            credits_per_port=self.config.er_credits_per_port,
            credit_policy=self.config.er_credit_policy)
        self.er.set_endpoint(ER_PORT_REMOTE, self._er_remote_out)

        # LTL engine + connection cache.
        self.ltl: Optional[LtlEngine] = None
        if self.config.with_ltl:
            self.ltl = LtlEngine(env, host_index, config=self.config.ltl,
                                 name=f"ltl-{host_index}",
                                 streams=streams)
            self.ltl.transport = FabricLtlTransport(self)
            self.ltl.on_message = self._ltl_message_in
            self.ltl.on_connection_failed = self._remote_failed
            self.ltl.on_connection_degraded = self._remote_degraded
        self._send_conns: Dict[int, int] = {}  # dst host -> send conn id
        #: Called with the remote host index when LTL declares it failed
        #: ("timeouts can also be used to identify failing nodes quickly,
        #: if ultra-fast reprovisioning of a replacement is critical") —
        #: HaaS service managers hook this to trigger replacement.
        self.on_remote_failure: Optional[Callable[[int], None]] = None
        #: Called with the remote host index when LTL suspects the remote
        #: is gray (slow) — repeated timeouts short of failure.
        self.on_remote_degraded: Optional[Callable[[int], None]] = None

        # Board subsystems.
        self.pcie = [PcieDmaEngine(env, self.board.spec, name=f"pcie{i}")
                     for i in range(self.board.spec.pcie_links)]
        self.ddr = DdrController(env, self.board.spec,
                                 rng=streams.stream("ddr"))
        self.ddr.calibrated = True  # calibration modeled in deployment study

        #: Role message handler (role 0): called with
        #: (payload, length_bytes).  Additional roles register through
        #: :meth:`set_role_handler`.
        self.role_receive: Optional[Callable[[Any, int], None]] = None
        self._role_handlers: Dict[int, Callable[[Any, int], None]] = {}
        for role in range(self.config.num_roles):
            self.er.set_endpoint(
                self.role_port(role),
                lambda msg, r=role: self._role_in(
                    r, msg.payload, msg.length_bytes))

    # ------------------------------------------------------------------
    # Link management
    # ------------------------------------------------------------------
    def _on_link_change(self, up: bool) -> None:
        self.bridge.link_up = up

    # ------------------------------------------------------------------
    # TOR-side datapath
    # ------------------------------------------------------------------
    def _receive_from_tor(self, packet: Packet) -> None:
        """All traffic from the TOR lands here (it is a bump in the wire).

        The MAC/PHY rx traversal is a macro-event: two chained Deferreds
        stand in for the Process (bootstrap + timeout + terminal success
        event) the old code spawned per packet.  The terminal event had no
        waiters, so dropping it is compensated in ``events_processed`` to
        keep seeded event counts bit-identical.
        """
        trace = packet.trace
        if trace is not None:
            # Close the last wire hop (TOR -> this host's QSFP).
            trace.tap(_STAGE_LINK_WIRE, self.env.now)
        self.env.call_later(0.0, self._rx_mac, packet)

    def _rx_mac(self, packet: Packet) -> None:
        self.env.call_later(self.config.mac_rx_latency,
                            self._rx_deliver, packet)

    def _rx_deliver(self, packet: Packet) -> None:
        env = self.env
        if packet.trace is not None:
            packet.trace.tap(_STAGE_SHELL_MAC_RX, env.now)
        # Macro-event compensation: the retired rx Process's terminal
        # success event (one schedule + one no-op pop).
        env.events_processed += 1
        if self._is_local_ltl(packet):
            if self.ltl is not None:
                self.ltl.receive_frame(packet.payload,
                                       ecn_marked=packet.ecn_marked)
            return
        self.bridge.from_tor(packet)

    def _is_local_ltl(self, packet: Packet) -> bool:
        return (packet.udp is not None
                and packet.udp.dst_port == LTL_UDP_PORT
                and isinstance(packet.payload, LtlFrame)
                and packet.eth.dst_mac == self.attachment.mac)

    def _mac_to_tor(self, packet: Packet) -> None:
        """Bridge/injection output toward the TOR port.

        Macro-event twin of :meth:`_receive_from_tor`: Deferred chain in
        place of a per-packet Process, with the terminal success event
        compensated in ``events_processed``.
        """
        self.env.call_later(0.0, self._tx_mac, packet)

    def _tx_mac(self, packet: Packet) -> None:
        self.env.call_later(self.config.mac_tx_latency,
                            self._tx_send, packet)

    def _tx_send(self, packet: Packet) -> None:
        env = self.env
        if packet.trace is not None:
            # Everything since the LTL tx mark — transport + MAC/PHY
            # pipeline — is shell transmit time; the wire hop starts
            # here at the QSFP.
            packet.trace.tap(_STAGE_SHELL_MAC_TX, env.now)
        env.events_processed += 1
        self.attachment.send(packet)

    # ------------------------------------------------------------------
    # NIC-side datapath
    # ------------------------------------------------------------------
    def send_from_nic(self, packet: Packet) -> None:
        """The host NIC transmits: packet enters the FPGA's NIC port."""
        self.bridge.from_nic(packet)

    def _deliver_to_host_nic(self, packet: Packet) -> None:
        if self.nic_receive is not None:
            self.nic_receive(packet)

    # ------------------------------------------------------------------
    # Remote (LTL) port of the Elastic Router
    # ------------------------------------------------------------------
    def connect_to(self, other: "Shell", vc: int = 0) -> None:
        """Establish a persistent LTL connection pair with ``other``."""
        if self.ltl is None or other.ltl is None:
            raise RuntimeError("both shells need the LTL block "
                               "(ShellConfig.with_ltl)")
        if other.host_index in self._send_conns:
            return
        conn_here, conn_there = connect_pair(self.ltl, other.ltl, vc=vc)
        self._send_conns[other.host_index] = conn_here
        other._send_conns[self.host_index] = conn_there

    def role_port(self, role: int = 0) -> int:
        """ER port of role slot ``role`` (role 0 is the classic port 1)."""
        if not 0 <= role < self.config.num_roles:
            raise ValueError(f"role {role} out of range "
                             f"(num_roles={self.config.num_roles})")
        return ER_PORT_ROLE if role == 0 else 3 + role

    def set_role_handler(self, role: int,
                         handler: Callable[[Any, int], None]) -> None:
        """Register the consumer for role slot ``role``."""
        self.role_port(role)  # range check
        self._role_handlers[role] = handler

    def remote_send(self, dst_host: int, payload: Any,
                    length_bytes: int, dst_role: int = 0,
                    src_role: int = 0,
                    deadline: Optional[float] = None,
                    trace: Any = None) -> None:
        """Role-level API: send a message to a role on another FPGA.

        (Short-hand for pushing a :class:`RemoteEnvelope` through the ER's
        Remote port.)  ``deadline`` (absolute seconds) travels the whole
        hop: ER virtual channel here, LTL frame headers on the wire, and
        the ER on the receiving shell — each stage drops the message
        instead of forwarding once it expires.  ``trace`` (a
        :class:`~repro.trace.TraceContext`) rides the same route and is
        tapped at every datapath stage along the way.
        """
        event = self.er.send(
            self.role_port(src_role), ER_PORT_REMOTE,
            RemoteEnvelope(dst_host, payload, dst_role=dst_role,
                           deadline=deadline, trace=trace),
            length_bytes, deadline=deadline, trace=trace)
        event._defused = True

    def _er_remote_out(self, message) -> None:
        """ER delivered a message at the Remote port: hand it to LTL."""
        envelope: RemoteEnvelope = message.payload
        if self.ltl is None:
            raise RuntimeError("remote message on a shell without LTL")
        conn = self._send_conns.get(envelope.dst_host)
        if conn is None:
            raise RuntimeError(
                f"no LTL connection from {self.host_index} to "
                f"{envelope.dst_host}; call connect_to() first")
        self.ltl.send_message(
            conn, RemoteMessage(envelope.dst_role, envelope.payload,
                                deadline=envelope.deadline,
                                trace=envelope.trace),
            message.length_bytes, deadline=envelope.deadline,
            trace=envelope.trace)

    def _ltl_message_in(self, _conn_id: int, payload: Any,
                        length_bytes: int) -> None:
        """LTL delivered a message: route it to its role through the ER."""
        deadline: Optional[float] = None
        trace: Any = None
        if isinstance(payload, RemoteMessage):
            dst_role, inner = payload.dst_role, payload.payload
            deadline = payload.deadline
            trace = payload.trace
        else:
            dst_role, inner = 0, payload
        event = self.er.send(ER_PORT_REMOTE, self.role_port(dst_role),
                             inner, length_bytes, deadline=deadline,
                             trace=trace)
        event._defused = True

    def _role_in(self, role: int, payload: Any,
                 length_bytes: int) -> None:
        if self.scrubber is not None and self.scrubber.role_hung:
            # An SEU wedged the role region: messages go unanswered
            # until the ~30 s scrub pass recovers it (§II-B).  Senders'
            # LTL retransmissions mask short hangs.
            return
        handler = self._role_handlers.get(role)
        if handler is not None:
            handler(payload, length_bytes)
        elif role == 0 and self.role_receive is not None:
            self.role_receive(payload, length_bytes)

    def _remote_failed(self, connection_id: int, remote_host: int) -> None:
        # Drop the cached connection and free its table entry so a later
        # reprovision rebuilds it — HaaS re-establishes at the connect_to
        # level, so no connection stays permanently failed.
        self._send_conns.pop(remote_host, None)
        if self.ltl is not None and connection_id in self.ltl.send_table:
            self.ltl.close_send_connection(connection_id)
        if self.on_remote_failure is not None:
            self.on_remote_failure(remote_host)

    def _remote_degraded(self, _connection_id: int, remote_host: int) -> None:
        if self.on_remote_degraded is not None:
            self.on_remote_degraded(remote_host)
