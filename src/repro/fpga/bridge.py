"""The bump-in-the-wire NIC <-> TOR bridge with its role tap.

"The shell implements a bridge to enable this functionality ... The shell
provides a tap for FPGA roles to inject, inspect, and alter the network
traffic as needed, such as when encrypting network flows."

Taps are ordered filters on each direction.  A tap may pass a packet
through (return it), transform it (return a different packet), or consume
it (return ``None`` — e.g. the LTL engine consumes frames addressed to
this FPGA).  Roles inject packets in either direction through
:meth:`Bridge.inject_to_tor` / :meth:`Bridge.inject_to_nic`.

When the FPGA undergoes full reconfiguration the link is down and packets
are lost (counted); in bypass/golden mode taps are skipped but traffic
still flows — the failure property the paper highlights vs the torus:
a broken *role* never takes down neighboring FPGAs, and even a broken
image is recoverable by power-cycling to the golden (bypass) image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..net.packet import Packet
from ..sim import Environment

#: One-way latency through the bridge datapath (313 MHz pipeline).
BRIDGE_LATENCY_SECONDS = 0.05e-6

TapFn = Callable[[Packet], Optional[Packet]]


@dataclass
class BridgeStats:
    tor_to_nic: int = 0
    nic_to_tor: int = 0
    consumed_by_taps: int = 0
    injected: int = 0
    dropped_link_down: int = 0


class Bridge:
    """Bidirectional packet bridge between the TOR and NIC ports."""

    def __init__(self, env: Environment,
                 deliver_to_nic: Optional[Callable[[Packet], None]] = None,
                 deliver_to_tor: Optional[Callable[[Packet], None]] = None):
        self.env = env
        self.deliver_to_nic = deliver_to_nic
        self.deliver_to_tor = deliver_to_tor
        self.stats = BridgeStats()
        self.link_up = True
        #: Golden/bypass mode: taps are skipped entirely.
        self.bypass_mode = False
        self._tor_to_nic_taps: List[TapFn] = []
        self._nic_to_tor_taps: List[TapFn] = []

    # ------------------------------------------------------------------
    # Tap registration
    # ------------------------------------------------------------------
    def add_tor_to_nic_tap(self, tap: TapFn) -> None:
        """Filter for inbound (network -> host) traffic."""
        self._tor_to_nic_taps.append(tap)

    def add_nic_to_tor_tap(self, tap: TapFn) -> None:
        """Filter for outbound (host -> network) traffic."""
        self._nic_to_tor_taps.append(tap)

    def remove_tap(self, tap: TapFn) -> None:
        for taps in (self._tor_to_nic_taps, self._nic_to_tor_taps):
            if tap in taps:
                taps.remove(tap)

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def from_tor(self, packet: Packet) -> None:
        """Packet arrived on the TOR-facing port."""
        if not self.link_up:
            self.stats.dropped_link_down += 1
            return
        self.env.process(self._cross(packet, self._tor_to_nic_taps,
                                     "_to_nic"), name="bridge-t2n")

    def from_nic(self, packet: Packet) -> None:
        """Packet arrived on the NIC-facing port."""
        if not self.link_up:
            self.stats.dropped_link_down += 1
            return
        self.env.process(self._cross(packet, self._nic_to_tor_taps,
                                     "_to_tor"), name="bridge-n2t")

    def _cross(self, packet: Packet, taps: List[TapFn], direction: str):
        yield self.env.timeout(BRIDGE_LATENCY_SECONDS)
        result: Optional[Packet] = packet
        if not self.bypass_mode:
            for tap in taps:
                if result is None:
                    break
                # Taps exposing latency_for() (e.g. the crypto engine's
                # pipeline) stall this packet for that long in the tap.
                latency_for = getattr(tap, "latency_for", None)
                if latency_for is not None:
                    delay = latency_for(result)
                    if delay > 0:
                        yield self.env.timeout(delay)
                result = tap(result)
        if result is None:
            self.stats.consumed_by_taps += 1
            return
        if direction == "_to_nic":
            self.stats.tor_to_nic += 1
            if self.deliver_to_nic is not None:
                self.deliver_to_nic(result)
        else:
            self.stats.nic_to_tor += 1
            if self.deliver_to_tor is not None:
                self.deliver_to_tor(result)

    # ------------------------------------------------------------------
    # Role injection
    # ------------------------------------------------------------------
    def inject_to_tor(self, packet: Packet) -> None:
        """A role (e.g. LTL) sources a packet toward the network."""
        if not self.link_up:
            self.stats.dropped_link_down += 1
            return
        self.stats.injected += 1
        if self.deliver_to_tor is not None:
            self.deliver_to_tor(packet)

    def inject_to_nic(self, packet: Packet) -> None:
        """A role sources a packet toward the host."""
        if not self.link_up:
            self.stats.dropped_link_down += 1
            return
        self.stats.injected += 1
        if self.deliver_to_nic is not None:
            self.deliver_to_nic(packet)
