"""FPGA configuration: flash images, golden image, full/partial reconfig.

Paper §II: a 256 Mb flash holds "the known-good golden image for the FPGA
that is loaded on power on, as well as one application image."  Full
reconfiguration "briefly brings down this network link"; when traffic
cannot pause, "partial reconfiguration permits packets to be passed
through even during reconfiguration of the role."  A wedged FPGA is
recovered by power-cycling the server through the side-channel management
port, which reloads the golden image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Environment

#: Full-device reconfiguration time (Stratix V-class, from flash/PCIe).
FULL_RECONFIG_SECONDS = 1.0
#: Partial reconfiguration of a role region.
PARTIAL_RECONFIG_SECONDS = 0.25
#: Power cycle via the management side-channel (server reboot not modeled;
#: this is FPGA-image recovery time only).
POWER_CYCLE_SECONDS = 10.0


@dataclass(frozen=True)
class Image:
    """A bitstream: a named image with a role identifier."""

    name: str
    role_name: str
    #: Golden images carry no application role, only bridge/bypass.
    is_golden: bool = False


GOLDEN_IMAGE = Image(name="golden", role_name="bypass", is_golden=True)


class ConfigurationError(Exception):
    """Raised on invalid configuration transitions."""


class ConfigurationManager:
    """Per-FPGA configuration state machine.

    Tracks the two flash slots (golden + one application image), which
    image is live, and whether the network datapath is up.  Callbacks let
    the shell react to link-down/link-up (the bridge drops packets while
    the link is down during full reconfiguration).
    """

    def __init__(self, env: Environment,
                 application_image: Optional[Image] = None):
        self.env = env
        self.flash_golden: Image = GOLDEN_IMAGE
        self.flash_application: Optional[Image] = application_image
        self.live_image: Image = GOLDEN_IMAGE
        self.reconfiguring = False
        self.link_up = True
        self.full_reconfigs = 0
        self.partial_reconfigs = 0
        self.power_cycles = 0
        self.on_link_change: Optional[Callable[[bool], None]] = None

    # ------------------------------------------------------------------
    def write_application_image(self, image: Image) -> None:
        """Flash the single application slot (golden is never overwritten
        by policy)."""
        if image.is_golden:
            raise ConfigurationError(
                "policy: the golden image slot is never rewritten in situ")
        self.flash_application = image

    def _set_link(self, up: bool) -> None:
        if self.link_up != up:
            self.link_up = up
            if self.on_link_change is not None:
                self.on_link_change(up)

    def full_reconfigure(self, image: Optional[Image] = None):
        """Process: load an image with the network link briefly down.

        Yields until complete.  ``image`` defaults to the application slot.
        """
        if self.reconfiguring:
            raise ConfigurationError("reconfiguration already in progress")
        target = image or self.flash_application
        if target is None:
            raise ConfigurationError("no application image in flash")
        self.reconfiguring = True
        self._set_link(False)
        yield self.env.timeout(FULL_RECONFIG_SECONDS)
        self.live_image = target
        self.reconfiguring = False
        self.full_reconfigs += 1
        self._set_link(True)

    def partial_reconfigure(self, image: Image):
        """Process: swap only the role region; the bridge keeps passing
        packets (link stays up)."""
        if self.reconfiguring:
            raise ConfigurationError("reconfiguration already in progress")
        if image.is_golden:
            raise ConfigurationError(
                "partial reconfiguration targets the role region only")
        self.reconfiguring = True
        yield self.env.timeout(PARTIAL_RECONFIG_SECONDS)
        self.live_image = image
        self.reconfiguring = False
        self.partial_reconfigs += 1

    def power_cycle(self):
        """Process: management-port power cycle -> golden image loads.

        This is the §II recovery path: "power cycling the server through
        the management port will bring the FPGA back into a good
        configuration, making the server reachable via the network once
        again."
        """
        self.reconfiguring = True
        self._set_link(False)
        yield self.env.timeout(POWER_CYCLE_SECONDS)
        self.live_image = self.flash_golden
        self.reconfiguring = False
        self.power_cycles += 1
        self._set_link(True)
