"""Fault campaigns: scripted or randomized failure schedules.

A campaign is a time-ordered list of :class:`FaultEvent` drawn from the
paper's §II-B failure taxonomy, scaled from the observed per-machine-day
rates up to whatever intensity a short simulation needs.  Campaigns are
deterministic given (hosts, horizon, config, seed) so chaos experiments
replay exactly.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..deployment.failures import FailureRates

SECONDS_PER_DAY = 24 * 3600.0


class FaultKind(enum.Enum):
    """The failure taxonomy the injector knows how to produce."""

    #: Silent permanent death: the node drops off the fabric for good.
    FPGA_DEATH = "fpga_death"
    #: Transient link loss: detach, then reattach after ``duration``.
    LINK_FLAP = "link_flap"
    #: Frames to the target are corrupted with probability ``magnitude``.
    FRAME_CORRUPT = "frame_corrupt"
    #: Frames to the target are dropped with probability ``magnitude``.
    FRAME_DROP = "frame_drop"
    #: Gray node: deliveries to the target delayed by ``magnitude`` s.
    GRAY_NODE = "gray_node"
    #: SEU wedges the role region until repair.
    ROLE_HANG = "role_hang"
    #: Whole TOR dark for ``duration``: every host on it detaches.
    TOR_OUTAGE = "tor_outage"
    #: Control-plane stall: heartbeats stop, leases may expire.
    CONTROL_STALL = "control_stall"
    #: Flash crowd: offered load multiplied by ``magnitude`` for
    #: ``duration`` — the overload fault (ISSUE 6).
    LOAD_SPIKE = "load_spike"
    #: Limplock: the target serves/forwards ``magnitude`` x slower for
    #: ``duration`` without failing health checks.
    SLOW_PEER = "slow_peer"
    #: The Resource Manager process dies; restarted (journal replay +
    #: epoch bump) after ``duration``.  (New members append at the end:
    #: campaign draws are per-kind in enum order, so earlier kinds'
    #: schedules are byte-stable across taxonomy growth.)
    RM_CRASH = "rm_crash"
    #: One Service Manager loses all control-plane connectivity for
    #: ``duration`` — renews, acquires and revocation pushes are all
    #: dropped (the split-brain scenario lease fencing defends against).
    NETWORK_PARTITION = "network_partition"


#: Kinds whose effect ends on its own after ``duration``.
TRANSIENT_KINDS = frozenset({
    FaultKind.LINK_FLAP, FaultKind.FRAME_CORRUPT, FaultKind.FRAME_DROP,
    FaultKind.GRAY_NODE, FaultKind.TOR_OUTAGE, FaultKind.CONTROL_STALL,
    FaultKind.LOAD_SPIKE, FaultKind.SLOW_PEER, FaultKind.RM_CRASH,
    FaultKind.NETWORK_PARTITION,
})

#: Kinds aimed at the control plane rather than a host (target -1).
CONTROL_PLANE_KINDS = frozenset({
    FaultKind.CONTROL_STALL, FaultKind.RM_CRASH,
    FaultKind.NETWORK_PARTITION,
})


@dataclass
class FaultEvent:
    """One scheduled fault."""

    at: float
    kind: FaultKind
    #: Host index for host-scoped faults; for TOR_OUTAGE any host on the
    #: victim TOR; -1 for control-plane faults.
    target: int = -1
    #: How long a transient fault lasts (seconds).
    duration: float = 0.0
    #: Kind-specific intensity: corruption/drop probability, or the gray
    #: delivery delay in seconds.
    magnitude: float = 0.0


@dataclass
class CampaignConfig:
    """Per-kind event rates (events per host-second) and shapes.

    Defaults come from :meth:`scaled_from_paper` semantics: call that to
    derive rates from the §II-B table; construct directly for hand-tuned
    mixes.
    """

    rates: Dict[FaultKind, float] = field(default_factory=dict)
    flap_duration: float = 2.0
    corrupt_duration: float = 1.0
    corrupt_probability: float = 0.3
    drop_duration: float = 1.0
    drop_probability: float = 0.3
    gray_duration: float = 2.0
    gray_delay: float = 1e-3
    tor_outage_duration: float = 3.0
    control_stall_duration: float = 10.0
    load_spike_duration: float = 2.0
    load_spike_multiplier: float = 5.0
    slow_peer_duration: float = 2.0
    slow_peer_factor: float = 8.0
    rm_crash_duration: float = 3.0
    partition_duration: float = 8.0

    @classmethod
    def scaled_from_paper(cls, scale: float,
                          rates: Optional[FailureRates] = None,
                          **shape_overrides) -> "CampaignConfig":
        """Derive per-host-second rates from §II-B, multiplied by
        ``scale`` so a seconds-long simulation sees a month's mix.

        The observed counts cover hard deaths, flaky links and SEUs; the
        purely synthetic attack shapes (corruption, drop, gray, TOR
        outage, control stall) are pinned to the cable/SEU scales so the
        mix stays §II-B-proportioned.
        """
        r = rates or FailureRates()
        hard = r.fpga_hard_per_machine_day / SECONDS_PER_DAY * scale
        cable = r.cable_per_machine_day / SECONDS_PER_DAY * scale
        seu = (r.seu_per_machine_day * r.seu_role_hang_fraction
               / SECONDS_PER_DAY * scale)
        config = cls(rates={
            FaultKind.FPGA_DEATH: hard,
            FaultKind.LINK_FLAP: cable,
            FaultKind.FRAME_CORRUPT: cable,
            FaultKind.FRAME_DROP: cable,
            FaultKind.GRAY_NODE: cable,
            FaultKind.ROLE_HANG: seu,
            # Rack- and control-plane-scoped events are far rarer than
            # per-host ones in practice.
            FaultKind.TOR_OUTAGE: cable / 10.0,
            FaultKind.CONTROL_STALL: cable / 10.0,
            # Overload events: flash crowds hit the datacenter, not a
            # host, so they arrive at TOR-outage-like rarity; limplocked
            # peers show up about as often as other gray cable faults.
            FaultKind.LOAD_SPIKE: cable / 10.0,
            FaultKind.SLOW_PEER: cable,
            # Control-plane process death is the rarest event in the
            # taxonomy; partitions stranding a single SM arrive at the
            # rack-event scale.
            FaultKind.RM_CRASH: cable / 20.0,
            FaultKind.NETWORK_PARTITION: cable / 10.0,
        })
        for name, value in shape_overrides.items():
            setattr(config, name, value)
        return config

    def event_shape(self, kind: FaultKind) -> Dict[str, float]:
        """(duration, magnitude) defaults for ``kind``."""
        return {
            FaultKind.FPGA_DEATH: dict(duration=0.0, magnitude=0.0),
            FaultKind.LINK_FLAP: dict(
                duration=self.flap_duration, magnitude=0.0),
            FaultKind.FRAME_CORRUPT: dict(
                duration=self.corrupt_duration,
                magnitude=self.corrupt_probability),
            FaultKind.FRAME_DROP: dict(
                duration=self.drop_duration,
                magnitude=self.drop_probability),
            FaultKind.GRAY_NODE: dict(
                duration=self.gray_duration, magnitude=self.gray_delay),
            FaultKind.ROLE_HANG: dict(duration=0.0, magnitude=0.0),
            FaultKind.TOR_OUTAGE: dict(
                duration=self.tor_outage_duration, magnitude=0.0),
            FaultKind.CONTROL_STALL: dict(
                duration=self.control_stall_duration, magnitude=0.0),
            FaultKind.LOAD_SPIKE: dict(
                duration=self.load_spike_duration,
                magnitude=self.load_spike_multiplier),
            FaultKind.SLOW_PEER: dict(
                duration=self.slow_peer_duration,
                magnitude=self.slow_peer_factor),
            FaultKind.RM_CRASH: dict(
                duration=self.rm_crash_duration, magnitude=0.0),
            FaultKind.NETWORK_PARTITION: dict(
                duration=self.partition_duration, magnitude=0.0),
        }[kind]


def generate_campaign(hosts: Sequence[int], horizon: float,
                      config: CampaignConfig,
                      seed: int = 0) -> List[FaultEvent]:
    """Draw a deterministic Poisson campaign over ``hosts``.

    Each kind arrives as an independent Poisson process with rate
    ``config.rates[kind] * len(hosts)``; targets are drawn uniformly from
    ``hosts`` (control stalls target -1).
    """
    if not hosts:
        raise ValueError("campaign needs at least one target host")
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    for kind in FaultKind:
        rate = config.rates.get(kind, 0.0) * len(hosts)
        if rate <= 0.0:
            continue
        t = rng.expovariate(rate)
        while t < horizon:
            shape = config.event_shape(kind)
            target = -1 if kind in CONTROL_PLANE_KINDS \
                else rng.choice(list(hosts))
            events.append(FaultEvent(at=t, kind=kind, target=target,
                                     **shape))
            t += rng.expovariate(rate)
    events.sort(key=lambda e: (e.at, e.kind.value, e.target))
    return events
