"""Datacenter fault injection (paper §II-B failure taxonomy).

Deterministic, seedable chaos campaigns against a live
:class:`~repro.core.cloud.ConfigurableCloud`, plus the observation
machinery that stamps when each injected fault was detected and
recovered by the system's own defenses (LTL checksums/retransmission,
FPGA Manager health monitoring, RM quarantine + lease expiry, SM
replacement retry).
"""

from .campaign import (CONTROL_PLANE_KINDS, CampaignConfig, FaultEvent,
                       FaultKind, SECONDS_PER_DAY, TRANSIENT_KINDS,
                       generate_campaign)
from .injector import FaultInjector, InjectionRecord, InjectorStats

__all__ = [
    "CONTROL_PLANE_KINDS",
    "CampaignConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "InjectionRecord",
    "InjectorStats",
    "SECONDS_PER_DAY",
    "TRANSIENT_KINDS",
    "generate_campaign",
]
