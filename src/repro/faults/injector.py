"""The fault injector: runs campaigns against a live ConfigurableCloud.

Every :class:`FaultEvent` becomes a real attack on the simulated
datacenter — detaching hosts from their TOR, corrupting or dropping
frames on the TOR->host hop, delaying deliveries (gray node), wedging
role regions, or stalling the control plane — and the injector then
*watches the system defend itself*, stamping when each fault was
detected and when service was restored.

Detection/recovery attribution per kind:

===============  ==========================================  =============
kind             detected when                               recovered when
===============  ==========================================  =============
FPGA_DEATH       FM leaves HEALTHY (LTL report or monitor)   SM replaces the
                                                             lost component
                                                             (or at detection
                                                             if the host was
                                                             unallocated)
LINK_FLAP        FM leaves HEALTHY                           FM back HEALTHY
GRAY_NODE        FM leaves HEALTHY (peer gray reports)       FM back HEALTHY
ROLE_HANG        FM leaves HEALTHY (scrubber flag)           FM back HEALTHY
TOR_OUTAGE       first affected FM leaves HEALTHY            every affected
                                                             FM back HEALTHY
FRAME_CORRUPT    LTL checksum drops observed at the victim   masked online by
                                                             LTL retransmit
FRAME_DROP       retransmissions observed fleet-wide         masked online by
                                                             LTL retransmit
CONTROL_STALL    RM lease expirations observed               SMs drain their
                                                             pending
                                                             replacements
LOAD_SPIKE       immediately (the spike is applied through   spike expires
                 the injector's ``load_hook``)
SLOW_PEER        tap removal (frames observably slowed; the  masked online by
                 victim never fails a health check — that    delivery; ends
                 is the point of a limplock)                 with ``duration``
RM_CRASH         immediately (process death is visible to    restarted RM
                 its supervisor)                             answers its first
                                                             acquire (journal
                                                             replay done)
NETWORK_PARTITION lease expirations / failed renews at the   stranded SM back
                 stranded SM                                 to full strength
                                                             (no pending
                                                             replacements)
===============  ==========================================  =============
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..core.cloud import ConfigurableCloud
from ..fpga.seu import SeuScrubber
from ..haas.constraints import Constraints
from ..haas.fpga_manager import FpgaHealth, FpgaManager
from ..haas.resource_manager import AllocationError
from ..haas.rpc import ServerUnavailable
from ..haas.service_manager import ServiceManager
from ..ltl.frames import LtlFrame
from .campaign import FaultEvent, FaultKind

#: XOR-ed into a frame's checksum to model wire corruption.
_CORRUPTION_MASK = 0x5A5A5A5A

#: Kinds whose detection/recovery is observed through FM health
#: transitions on the affected host(s).
_HEALTH_WATCHED = frozenset({
    FaultKind.FPGA_DEATH, FaultKind.LINK_FLAP, FaultKind.GRAY_NODE,
    FaultKind.ROLE_HANG, FaultKind.TOR_OUTAGE,
})


@dataclass
class InjectionRecord:
    """One injected fault and the system's observed response."""

    event: FaultEvent
    injected_at: float
    detected_at: Optional[float] = None
    recovered_at: Optional[float] = None
    note: str = ""
    #: Hosts whose FM health this record watches.
    affected: List[int] = field(default_factory=list)
    #: Detection alone closes the record (e.g. death of an idle host:
    #: the pool evicting it is the whole remedy).
    recover_on_detect: bool = False
    #: Recovery is an SM component replacement, not an FM transition.
    awaiting_replacement: bool = False

    @property
    def detection_latency(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def recovery_latency(self) -> Optional[float]:
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at

    @property
    def resolved(self) -> bool:
        return self.detected_at is not None and \
            self.recovered_at is not None


@dataclass
class InjectorStats:
    injections: Dict[str, int] = field(default_factory=dict)
    frames_corrupted: int = 0
    frames_dropped: int = 0
    frames_delayed: int = 0
    frames_slowed: int = 0
    load_spikes: int = 0

    def count(self, kind: FaultKind) -> None:
        self.injections[kind.value] = \
            self.injections.get(kind.value, 0) + 1


class FaultInjector:
    """Deterministic fault injection against a live cloud.

    ``hosts`` is the campaign's blast radius (usually the HaaS pool);
    ``service_managers`` are watched for component replacements and are
    the control-stall victims.
    """

    def __init__(self, cloud: ConfigurableCloud,
                 hosts: Sequence[int],
                 service_managers: Sequence[ServiceManager] = (),
                 seed: int = 0):
        self.cloud = cloud
        self.env = cloud.env
        self.hosts = list(hosts)
        self.service_managers = list(service_managers)
        self.rng = random.Random(seed)
        #: LOAD_SPIKE effector: called with the load multiplier when a
        #: spike starts and with 1.0 when it ends.  Harnesses that drive
        #: an offered-load process set this; without it spikes are
        #: elided (recorded but no-op).
        self.load_hook: Optional[Callable[[float], None]] = None
        self.records: List[InjectionRecord] = []
        self.stats = InjectorStats()
        #: host -> open (unresolved) health-watched records.
        self._open: Dict[int, List[InjectionRecord]] = {}
        #: Hosts permanently killed by FPGA_DEATH (never reattached).
        self._killed: Set[int] = set()
        self._watching = False
        #: Round-robin cursor over SMs for NETWORK_PARTITION victims.
        self._partition_rr = 0

    # ------------------------------------------------------------------
    # Campaign driving
    # ------------------------------------------------------------------
    def run_campaign(self, events: Sequence[FaultEvent]) -> None:
        """Schedule every event; effects unfold as the env runs."""
        self._ensure_watch()
        for event in events:
            self.env.process(self._scheduled(event),
                             name=f"fault-{event.kind.value}")

    def _scheduled(self, event: FaultEvent):
        delay = event.at - self.env.now
        yield self.env.timeout(max(delay, 0.0))
        self.inject(event)

    def inject(self, event: FaultEvent) -> InjectionRecord:
        """Fire one fault now; returns its (live) record."""
        self._ensure_watch()
        record = InjectionRecord(event=event, injected_at=self.env.now)
        self.records.append(record)
        self.stats.count(event.kind)
        if event.kind in _HEALTH_WATCHED:
            record.affected = self._targets_of(event)
            for host in record.affected:
                self._open.setdefault(host, []).append(record)
            # A fault landing on already-unhealthy target(s) produces no
            # fresh health transition: the system already knows.
            if record.affected and all(
                    self._health_of(h) is not FpgaHealth.HEALTHY
                    for h in record.affected):
                record.detected_at = record.injected_at
                record.note += "target already unhealthy at injection"
        self.env.process(self._execute(event, record),
                         name=f"fault-exec-{event.kind.value}")
        return record

    def _targets_of(self, event: FaultEvent) -> List[int]:
        if event.kind is FaultKind.TOR_OUTAGE:
            topo = self.cloud.fabric.topology
            victim = topo.coords(event.target)
            return [h for h in self.hosts
                    if topo.coords(h).pod == victim.pod
                    and topo.coords(h).tor == victim.tor
                    and h not in self._killed]
        return [event.target]

    # ------------------------------------------------------------------
    # Fault primitives
    # ------------------------------------------------------------------
    def _execute(self, event: FaultEvent, record: InjectionRecord):
        kind = event.kind
        if kind is FaultKind.FPGA_DEATH:
            yield from self._do_death(event, record)
        elif kind is FaultKind.LINK_FLAP:
            yield from self._do_flap(event, record)
        elif kind is FaultKind.TOR_OUTAGE:
            yield from self._do_tor_outage(event, record)
        elif kind is FaultKind.GRAY_NODE:
            yield from self._do_gray(event, record)
        elif kind is FaultKind.FRAME_CORRUPT:
            yield from self._do_corrupt(event, record)
        elif kind is FaultKind.FRAME_DROP:
            yield from self._do_drop(event, record)
        elif kind is FaultKind.ROLE_HANG:
            yield from self._do_role_hang(event, record)
        elif kind is FaultKind.CONTROL_STALL:
            yield from self._do_control_stall(event, record)
        elif kind is FaultKind.LOAD_SPIKE:
            yield from self._do_load_spike(event, record)
        elif kind is FaultKind.SLOW_PEER:
            yield from self._do_slow_peer(event, record)
        elif kind is FaultKind.RM_CRASH:
            yield from self._do_rm_crash(event, record)
        elif kind is FaultKind.NETWORK_PARTITION:
            yield from self._do_network_partition(event, record)
        else:  # pragma: no cover - exhaustive over FaultKind
            raise ValueError(f"unknown fault kind {kind}")

    def _do_death(self, event: FaultEvent, record: InjectionRecord):
        host = event.target
        self._killed.add(host)
        rm = self.cloud.resource_manager
        if rm.is_allocated(host):
            record.awaiting_replacement = True
        else:
            record.recover_on_detect = True
        if self.cloud.fabric.is_attached(host):
            self.cloud.fabric.detach(host)
        record.note = f"host {host} silently dead; " + record.note
        if record.recover_on_detect and record.detected_at is not None:
            # Killed while free and already known-bad: eviction from the
            # pool is the whole remedy.
            record.recovered_at = self.env.now
            self._close(record)
        # A permanently dead host can never return HEALTHY: re-evaluate
        # any open record (e.g. a TOR outage) that was waiting on it.
        now = self.env.now
        for other in list(self._open.get(host, ())):
            self._maybe_recover(other, now)
        yield self.env.timeout(0)

    def _do_flap(self, event: FaultEvent, record: InjectionRecord):
        host = event.target
        fabric = self.cloud.fabric
        if not fabric.is_attached(host):
            record.note = (f"host {host} already detached; flap elided; "
                           + record.note)
            record.recover_on_detect = True
            if record.detected_at is not None and \
                    record.recovered_at is None:
                record.recovered_at = self.env.now
                self._close(record)
            return
        fabric.detach(host)
        yield self.env.timeout(event.duration)
        if host not in self._killed and not fabric.is_attached(host):
            fabric.reattach(host)
        record.note = f"host {host} link down {event.duration:.3f}s"

    def _do_tor_outage(self, event: FaultEvent, record: InjectionRecord):
        fabric = self.cloud.fabric
        downed = []
        for host in record.affected:
            if fabric.is_attached(host):
                fabric.detach(host)
                downed.append(host)
        yield self.env.timeout(event.duration)
        for host in downed:
            if host not in self._killed and not fabric.is_attached(host):
                fabric.reattach(host)
        record.note = (f"TOR of host {event.target} dark "
                       f"{event.duration:.3f}s; hosts {downed}")

    def _do_gray(self, event: FaultEvent, record: InjectionRecord):
        host = event.target
        fabric = self.cloud.fabric
        delay = event.magnitude

        def tap(packet):
            self.stats.frames_delayed += 1

            def redeliver():
                yield self.env.timeout(delay)
                fabric.inject_delivery(host, packet)

            self.env.process(redeliver(), name=f"gray-delay-{host}")
            return None

        fabric.install_tap(host, tap)
        yield self.env.timeout(event.duration)
        fabric.remove_tap(host, tap)
        record.note = (f"host {host} deliveries delayed {delay * 1e6:.0f}us"
                       f" for {event.duration:.3f}s")

    def _do_corrupt(self, event: FaultEvent, record: InjectionRecord):
        host = event.target
        fabric = self.cloud.fabric
        probability = event.magnitude
        corrupted = 0

        def tap(packet):
            nonlocal corrupted
            frame = packet.payload
            if isinstance(frame, LtlFrame) and \
                    self.rng.random() < probability:
                # Corrupt a copy: the sender still holds this frame in
                # its unacked store for retransmission.
                packet.payload = dc_replace(
                    frame,
                    checksum=(frame.checksum or 0) ^ _CORRUPTION_MASK)
                corrupted += 1
                self.stats.frames_corrupted += 1
            return packet

        shell = self.cloud.shell(host)
        before = shell.ltl.stats.corrupt_dropped if shell.ltl else 0
        fabric.install_tap(host, tap)
        yield self.env.timeout(event.duration)
        fabric.remove_tap(host, tap)
        dropped = (shell.ltl.stats.corrupt_dropped - before) \
            if shell.ltl else 0
        now = self.env.now
        if corrupted == 0:
            # No traffic crossed the tap: the fault never manifested.
            record.detected_at = record.recovered_at = now
            record.note = f"host {host}: no frames crossed the tap"
        elif dropped > 0:
            record.detected_at = record.recovered_at = now
            record.note = (f"host {host}: {dropped}/{corrupted} corrupt "
                           "frames caught by LTL checksum, masked by "
                           "retransmission")
        else:
            record.note = (f"host {host}: {corrupted} corrupted frames "
                           "NOT caught")

    def _do_drop(self, event: FaultEvent, record: InjectionRecord):
        host = event.target
        fabric = self.cloud.fabric
        probability = event.magnitude
        dropped = 0

        def tap(packet):
            nonlocal dropped
            if self.rng.random() < probability:
                dropped += 1
                self.stats.frames_dropped += 1
                return None
            return packet

        before = self._fleet_retransmissions()
        fabric.install_tap(host, tap)
        yield self.env.timeout(event.duration)
        fabric.remove_tap(host, tap)
        # Give go-back-N a few retransmit-timeouts to observe the loss.
        shell = self.cloud.shell(host)
        rto = shell.ltl.config.retransmit_timeout if shell.ltl else 50e-6
        yield self.env.timeout(4 * rto)
        retx = self._fleet_retransmissions() - before
        now = self.env.now
        if dropped == 0:
            record.detected_at = record.recovered_at = now
            record.note = f"host {host}: no frames crossed the tap"
        elif retx > 0:
            record.detected_at = record.recovered_at = now
            record.note = (f"host {host}: {dropped} frames dropped, "
                           f"{retx} retransmissions masked the loss")
        else:
            record.note = f"host {host}: {dropped} drops unobserved"

    def _do_role_hang(self, event: FaultEvent, record: InjectionRecord):
        host = event.target
        shell = self.cloud.shell(host)
        if shell.scrubber is None:
            # The shell was built without SEU modeling; give it a quiet
            # scrubber (no spontaneous flips) so the hang is observable
            # and recoverable through the standard path.
            shell.scrubber = SeuScrubber(
                self.env, rng=random.Random(0),
                mean_seconds_between_flips=1e18)
        shell.scrubber.inject_flip(role_hang=True)
        record.note = f"host {host} role hung by SEU"
        yield self.env.timeout(0)

    def _do_control_stall(self, event: FaultEvent, record: InjectionRecord):
        rm = self.cloud.resource_manager
        before_exp = rm.stats.expirations
        for sm in self.service_managers:
            sm.suspend_heartbeat(event.duration)
        record.note = f"heartbeats suspended {event.duration:.1f}s"
        yield self.env.timeout(event.duration)
        # Wait out one sweep so any expiry is actually observed.
        yield self.env.timeout(rm._sweep_period)
        if rm.stats.expirations > before_exp:
            record.detected_at = self.env.now
            record.note += (f"; {rm.stats.expirations - before_exp} "
                            "leases expired")
            # Recovered once the SMs re-acquired everything they lost.
            deadline = self.env.now + 120.0
            while self.env.now < deadline:
                if all(sm.pending_replacements == 0
                       for sm in self.service_managers):
                    record.recovered_at = self.env.now
                    break
                yield self.env.timeout(0.5)
        else:
            # Leases survived the stall (duration < lease slack): the
            # fault never manifested.
            record.detected_at = record.recovered_at = self.env.now
            record.note += "; no leases expired"

    def _do_load_spike(self, event: FaultEvent, record: InjectionRecord):
        """Flash crowd: offered load x ``magnitude`` for ``duration``.

        The injector does not own the workload, so the spike is applied
        through :attr:`load_hook`; overload defense (admission control,
        shedding, deadline drops) lives in the serving path and is
        measured by the harness, so the record closes when the spike
        expires.  Without a hook the spike is elided.
        """
        self.stats.load_spikes += 1
        if self.load_hook is None:
            record.detected_at = record.recovered_at = self.env.now
            record.note = "no load hook installed; spike elided"
            yield self.env.timeout(0)
            return
        self.load_hook(event.magnitude)
        record.detected_at = self.env.now
        record.note = (f"offered load x{event.magnitude:.1f} for "
                       f"{event.duration:.3f}s")
        yield self.env.timeout(event.duration)
        self.load_hook(1.0)
        record.recovered_at = self.env.now

    def _do_slow_peer(self, event: FaultEvent, record: InjectionRecord):
        """Limplock: the victim's NIC serves frames ``magnitude`` x
        slower without ever failing a health check.

        Modeled as extra per-frame delivery delay proportional to each
        frame's wire size: ``(magnitude - 1) * wire_time``.  Unlike a
        gray node the slowdown is load-dependent — big frames hurt more
        — and stays below any health threshold, which is exactly the
        gray-failure shape hedged requests exist to mask.
        """
        host = event.target
        fabric = self.cloud.fabric
        factor = max(event.magnitude, 1.0)
        rate_bps = fabric.config.latency.host_rate_bps
        slowed = 0

        def tap(packet):
            nonlocal slowed
            slowed += 1
            self.stats.frames_slowed += 1
            extra = (factor - 1.0) * packet.wire_bytes * 8.0 / rate_bps

            def redeliver():
                yield self.env.timeout(extra)
                fabric.inject_delivery(host, packet)

            self.env.process(redeliver(), name=f"slow-peer-{host}")
            return None

        fabric.install_tap(host, tap)
        yield self.env.timeout(event.duration)
        fabric.remove_tap(host, tap)
        now = self.env.now
        record.detected_at = record.recovered_at = now
        if slowed == 0:
            record.note = f"host {host}: no frames crossed the tap"
        else:
            record.note = (f"host {host}: {slowed} frames served "
                           f"{factor:.0f}x slow for {event.duration:.3f}s")

    def _do_rm_crash(self, event: FaultEvent, record: InjectionRecord):
        """Kill the RM process; restart it after ``duration``.

        Recovery is stamped at the restarted RM's *first successful
        acquire* (an :class:`AllocationError` counts — the RM answered,
        the pool just happened to be full), i.e. crash -> journal replay
        -> serving again.
        """
        rm = self.cloud.resource_manager
        if rm.crashed:
            record.detected_at = record.recovered_at = self.env.now
            record.note = "RM already down; crash elided"
            yield self.env.timeout(0)
            return
        held = rm.allocated_count
        rm.crash()
        record.detected_at = self.env.now
        record.note = (f"RM down {event.duration:.1f}s "
                       f"({held} hosts were leased)")
        yield self.env.timeout(event.duration)
        restarted_at = self.env.now
        recovered = rm.restart()
        probe_step = max(min(rm._sweep_period / 10.0, 0.1), 1e-3)
        deadline = self.env.now + 120.0
        while self.env.now < deadline:
            try:
                lease = rm.acquire("__rm-probe__", Constraints(count=1))
            except AllocationError:
                break  # RM is serving; the pool is just exhausted
            except ServerUnavailable:
                yield self.env.timeout(probe_step)
                continue
            rm.release(lease)
            break
        record.recovered_at = self.env.now
        record.note += (f"; replayed {len(rm.journal)} records, "
                        f"recovered {recovered} leases, serving again "
                        f"+{self.env.now - restarted_at:.3f}s after "
                        "restart")

    def _do_network_partition(self, event: FaultEvent,
                              record: InjectionRecord):
        """Strand one SM: its channel drops everything both ways for
        ``duration`` — no renews out, no revocation pushes in."""
        if not self.service_managers:
            record.detected_at = record.recovered_at = self.env.now
            record.note = "no service managers; partition elided"
            yield self.env.timeout(0)
            return
        sm = self.service_managers[
            self._partition_rr % len(self.service_managers)]
        self._partition_rr += 1
        rm = self.cloud.resource_manager
        before_exp = rm.stats.expirations
        before_fail = sm.stats.renew_failures
        sm.channel.partition_for(event.duration)
        record.note = f"SM {sm.name!r} partitioned {event.duration:.1f}s"
        yield self.env.timeout(event.duration)
        # Wait out one sweep so any expiry is actually observed.
        yield self.env.timeout(rm._sweep_period)
        manifested = (rm.stats.expirations > before_exp
                      or sm.stats.renew_failures > before_fail)
        if not manifested:
            record.detected_at = record.recovered_at = self.env.now
            record.note += "; leases outlived the partition"
            return
        record.detected_at = self.env.now
        record.note += (f"; {rm.stats.expirations - before_exp} leases "
                        f"expired, {sm.stats.renew_failures - before_fail}"
                        " renews lost")
        # Recovered once the stranded SM is back to full strength.
        deadline = self.env.now + 120.0
        while self.env.now < deadline:
            if sm.pending_replacements == 0:
                record.recovered_at = self.env.now
                break
            yield self.env.timeout(0.5)

    def _fleet_retransmissions(self) -> int:
        # Sum over every server (not just the campaign hosts): dropping
        # deliveries to a victim makes its *peers* retransmit.
        total = 0
        for server in self.cloud.servers.values():
            if server.shell.ltl is not None:
                total += server.shell.ltl.stats.retransmissions
        return total

    # ------------------------------------------------------------------
    # Detection / recovery observation
    # ------------------------------------------------------------------
    def _ensure_watch(self) -> None:
        if self._watching:
            return
        self._watching = True
        rm = self.cloud.resource_manager
        for host in self.hosts:
            try:
                manager = rm.manager(host)
            except KeyError:
                continue
            self._chain_health(manager)
        for sm in self.service_managers:
            self._chain_replacement(sm)

    def _chain_health(self, manager: FpgaManager) -> None:
        previous = manager.on_health_change

        def chained(fm, old, new, reason):
            if previous is not None:
                previous(fm, old, new, reason)
            self._on_health_change(fm, old, new, reason)

        manager.on_health_change = chained

    def _chain_replacement(self, sm: ServiceManager) -> None:
        previous = sm.on_component_replaced

        def chained(lease):
            if previous is not None:
                previous(lease)
            self._on_component_replaced(lease)

        sm.on_component_replaced = chained

    def _on_health_change(self, fm: FpgaManager, old: FpgaHealth,
                          new: FpgaHealth, reason: str) -> None:
        now = self.env.now
        host = fm.host
        for record in list(self._open.get(host, ())):
            if new is not FpgaHealth.HEALTHY:
                if record.detected_at is None:
                    record.detected_at = now
                    record.note += f"; detected: {reason}"
                    if record.recover_on_detect:
                        record.recovered_at = now
                        self._close(record)
            else:
                self._maybe_recover(record, now)

    def _on_component_replaced(self, _lease) -> None:
        now = self.env.now
        for record in self.records:
            if record.awaiting_replacement and \
                    record.detected_at is not None and \
                    record.recovered_at is None:
                record.recovered_at = now
                record.awaiting_replacement = False
                self._close(record)
                break  # one replacement redeems one loss

    def _maybe_recover(self, record: InjectionRecord,
                       now: float) -> None:
        """Close a health-watched record once every affected host is
        either back HEALTHY or permanently dead (a killed host can never
        return — its own death record owns that loss)."""
        if record.detected_at is None or record.recovered_at is not None \
                or record.awaiting_replacement:
            return
        if all(h in self._killed
               or self._health_of(h) is FpgaHealth.HEALTHY
               for h in record.affected):
            record.recovered_at = now
            self._close(record)

    def _health_of(self, host: int) -> FpgaHealth:
        try:
            return self.cloud.resource_manager.manager(host).health
        except KeyError:
            return FpgaHealth.FAILED

    def _close(self, record: InjectionRecord) -> None:
        for host in record.affected:
            open_here = self._open.get(host)
            if open_here and record in open_here:
                open_here.remove(record)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Campaign outcome: counts and latency distributions."""
        detected = [r for r in self.records if r.detected_at is not None]
        recovered = [r for r in self.records
                     if r.recovered_at is not None]
        detection = sorted(r.detection_latency for r in detected)
        recovery = sorted(r.recovery_latency for r in recovered)

        def _stats(xs: List[float]) -> Dict[str, float]:
            if not xs:
                return {"count": 0}
            return {"count": len(xs), "mean": sum(xs) / len(xs),
                    "max": xs[-1]}

        return {
            "injected": len(self.records),
            "detected": len(detected),
            "recovered": len(recovered),
            "unresolved": [
                (r.event.kind.value, r.event.target, r.note)
                for r in self.records if not r.resolved],
            "detection_latency": _stats(detection),
            "recovery_latency": _stats(recovery),
            "by_kind": dict(self.stats.injections),
            "frames_corrupted": self.stats.frames_corrupted,
            "frames_dropped": self.stats.frames_dropped,
            "frames_delayed": self.stats.frames_delayed,
        }
