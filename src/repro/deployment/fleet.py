"""The 5,760-server evaluation bed (paper §II-B).

Builds boards, runs the burn-in protocol (power virus on the FPGA + a
server burn-in under datacenter environmental conditions), applies the
bring-up failure draws (PCIe training, DRAM calibration), and reports
which machines were "approved for production use".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..fpga.board import Board, BoardSpec
from ..fpga.power import (
    POWER_VIRUS_UTILIZATION,
    PowerModel,
    ThermalConditions,
)
from .failures import FLEET_SIZE, RANKING_SERVERS, FailureRates


@dataclass
class BurnInResult:
    """Outcome of the bring-up protocol for one machine."""

    serial: int
    power_virus_w: float
    passed_power: bool
    pcie_gen3_trained: bool
    dram_calibrated_first_try: bool
    dram_repaired_by_reconfig: bool

    @property
    def approved(self) -> bool:
        """Approved for production: power envelope + working interfaces.

        DRAM calibration failures were repaired by reconfiguring, and the
        five PCIe-degraded machines stayed in service (degraded secondary
        link only), so approval requires only the power envelope.
        """
        return self.passed_power


class Fleet:
    """The evaluation bed: boards + bring-up results."""

    def __init__(self, size: int = FLEET_SIZE,
                 rates: Optional[FailureRates] = None, seed: int = 0,
                 spec: Optional[BoardSpec] = None):
        self.size = size
        self.rates = rates or FailureRates()
        self.rng = random.Random(seed)
        self.spec = spec or BoardSpec()
        self.boards: List[Board] = [
            Board(serial=i, spec=self.spec) for i in range(size)]
        self.burn_in_results: List[BurnInResult] = []
        self.ranking_servers: List[int] = []

    # ------------------------------------------------------------------
    def run_burn_in(self, power_model: Optional[PowerModel] = None
                    ) -> List[BurnInResult]:
        """Stress every machine: power virus in worst-case conditions plus
        interface bring-up."""
        model = power_model or PowerModel()
        conditions = ThermalConditions.worst_case()
        results = []
        for board in self.boards:
            draw = model.power_w(POWER_VIRUS_UTILIZATION, conditions)
            # Board-to-board process variation: a few percent.
            draw *= 1.0 + self.rng.gauss(0.0, 0.015)
            pcie_ok = self.rng.random() >= \
                self.rates.pcie_training_probability
            dram_ok = self.rng.random() >= \
                self.rates.dram_calibration_probability
            if not pcie_ok:
                board.health.pcie_training_failures += 1
            if not dram_ok:
                board.health.dram_calibration_failures += 1
            results.append(BurnInResult(
                serial=board.serial, power_virus_w=draw,
                passed_power=draw <= board.spec.max_power_w,
                pcie_gen3_trained=pcie_ok,
                dram_calibrated_first_try=dram_ok,
                dram_repaired_by_reconfig=not dram_ok))
        self.burn_in_results = results
        return results

    # ------------------------------------------------------------------
    def deploy_ranking(self, count: int = RANKING_SERVERS) -> List[int]:
        """Assign ``count`` approved machines to the ranking service; the
        rest serve "other functions associated with web search"."""
        if not self.burn_in_results:
            raise RuntimeError("run burn-in before deployment")
        approved = [r.serial for r in self.burn_in_results if r.approved]
        if len(approved) < count:
            raise RuntimeError(
                f"only {len(approved)} machines approved; need {count}")
        self.ranking_servers = approved[:count]
        return self.ranking_servers

    def summary(self) -> Dict[str, float]:
        if not self.burn_in_results:
            raise RuntimeError("run burn-in first")
        results = self.burn_in_results
        return {
            "fleet_size": float(self.size),
            "approved": float(sum(1 for r in results if r.approved)),
            "pcie_training_failures": float(
                sum(1 for r in results if not r.pcie_gen3_trained)),
            "dram_calibration_failures": float(
                sum(1 for r in results if not r.dram_calibrated_first_try)),
            "max_power_virus_w": max(r.power_virus_w for r in results),
            "ranking_servers": float(len(self.ranking_servers)),
        }
