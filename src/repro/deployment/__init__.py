"""Deployment study: the 5,760-server bed and its reliability (§II-B)."""

from .failures import (
    FLEET_SIZE,
    OBSERVATION_DAYS,
    RANKING_SERVERS,
    DeploymentReport,
    FailureRates,
    MirroredTrafficStudy,
    expected_report,
)
from .fleet import BurnInResult, Fleet

__all__ = [
    "BurnInResult",
    "DeploymentReport",
    "FLEET_SIZE",
    "FailureRates",
    "Fleet",
    "MirroredTrafficStudy",
    "OBSERVATION_DAYS",
    "RANKING_SERVERS",
    "expected_report",
]
