"""Fleet reliability model (paper §II-B).

The observed month of mirrored traffic on the 5,760-server bed:

* 2 FPGA hard failures (one persistent-SEU board, one unstable 40G link
  to the NIC),
* 1 unstable 40G link to the TOR that was a *cable*, not an FPGA,
* 5 machines that failed to train the secondary PCIe link to Gen3 x8,
* 8 DRAM calibration failures, repaired by reconfiguration (later traced
  to a logical error in the DRAM interface, not a hard failure),
* one configuration bit-flip per 1025 machine-days, scrubbed every ~30 s,
* at least one role hang attributable to an SEU, recovered automatically.

Rates below are the maximum-likelihood rates implied by those counts; the
study draws Poisson/Binomial samples at fleet scale so the simulated
deployment reproduces the same kind of report.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional

#: The evaluation bed.
FLEET_SIZE = 5760
OBSERVATION_DAYS = 30.0
RANKING_SERVERS = 3081

#: Machine-days in the paper's observation.
_OBSERVED_MACHINE_DAYS = FLEET_SIZE * OBSERVATION_DAYS


@dataclass(frozen=True)
class FailureRates:
    """Per-unit failure rates implied by the §II-B counts."""

    #: Hard FPGA failures per machine-day.
    fpga_hard_per_machine_day: float = 2.0 / _OBSERVED_MACHINE_DAYS
    #: Cable (non-FPGA) failures per machine-day.
    cable_per_machine_day: float = 1.0 / _OBSERVED_MACHINE_DAYS
    #: One-time probability a machine fails PCIe Gen3 x8 training.
    pcie_training_probability: float = 5.0 / FLEET_SIZE
    #: One-time probability of a DRAM calibration failure at bring-up.
    dram_calibration_probability: float = 8.0 / FLEET_SIZE
    #: Configuration bit-flips per machine-day.
    seu_per_machine_day: float = 1.0 / 1025.0
    #: Fraction of SEUs that hang a role before scrubbing catches them.
    seu_role_hang_fraction: float = 0.01


@dataclass
class DeploymentReport:
    """The §II-B table for one simulated deployment."""

    fleet_size: int
    days: float
    fpga_hard_failures: int
    cable_failures: int
    pcie_training_failures: int
    dram_calibration_failures: int
    seu_flips: int
    seu_role_hangs: int
    seu_recoveries: int

    @property
    def machine_days(self) -> float:
        return self.fleet_size * self.days

    @property
    def seu_mean_days_between_flips(self) -> float:
        if self.seu_flips == 0:
            return math.inf
        return self.machine_days / self.seu_flips

    def as_dict(self) -> Dict[str, float]:
        return {
            "fleet_size": self.fleet_size,
            "days": self.days,
            "fpga_hard_failures": self.fpga_hard_failures,
            "cable_failures": self.cable_failures,
            "pcie_training_failures": self.pcie_training_failures,
            "dram_calibration_failures": self.dram_calibration_failures,
            "seu_flips": self.seu_flips,
            "seu_role_hangs": self.seu_role_hangs,
            "seu_recoveries": self.seu_recoveries,
            "seu_mean_days_between_flips":
                self.seu_mean_days_between_flips,
        }


def expected_report(fleet_size: int = FLEET_SIZE,
                    days: float = OBSERVATION_DAYS,
                    rates: Optional[FailureRates] = None
                    ) -> Dict[str, float]:
    """Expected (mean) counts at a given scale — the paper's numbers when
    fleet_size/days match the published study."""
    rates = rates or FailureRates()
    machine_days = fleet_size * days
    seu = machine_days * rates.seu_per_machine_day
    return {
        "fpga_hard_failures": machine_days * rates.fpga_hard_per_machine_day,
        "cable_failures": machine_days * rates.cable_per_machine_day,
        "pcie_training_failures":
            fleet_size * rates.pcie_training_probability,
        "dram_calibration_failures":
            fleet_size * rates.dram_calibration_probability,
        "seu_flips": seu,
        "seu_role_hangs": seu * rates.seu_role_hang_fraction,
    }


class MirroredTrafficStudy:
    """Monte-Carlo §II-B study: sample one deployment's failure counts.

    All scrubbed SEUs are corrected ("we measured a low number of soft
    errors, which were all correctable"); role hangs recover within one
    ~30 s scrub period.
    """

    def __init__(self, fleet_size: int = FLEET_SIZE,
                 days: float = OBSERVATION_DAYS,
                 rates: Optional[FailureRates] = None, seed: int = 0):
        self.fleet_size = fleet_size
        self.days = days
        self.rates = rates or FailureRates()
        self.rng = random.Random(seed)

    def _poisson(self, mean: float) -> int:
        """Knuth sampling (means here are small); exact for our scales."""
        if mean <= 0:
            return 0
        limit = math.exp(-mean)
        k, product = 0, self.rng.random()
        while product > limit:
            k += 1
            product *= self.rng.random()
        return k

    def _binomial(self, n: int, p: float) -> int:
        if p <= 0:
            return 0
        # Poisson approximation is fine at n*p << n, but stay exact-ish
        # for small n by direct sampling when n is modest.
        if n <= 20000:
            return sum(1 for _ in range(n) if self.rng.random() < p)
        return self._poisson(n * p)

    def run(self) -> DeploymentReport:
        rates = self.rates
        machine_days = self.fleet_size * self.days
        seu_flips = self._poisson(machine_days * rates.seu_per_machine_day)
        hangs = self._binomial(seu_flips, rates.seu_role_hang_fraction)
        return DeploymentReport(
            fleet_size=self.fleet_size, days=self.days,
            fpga_hard_failures=self._poisson(
                machine_days * rates.fpga_hard_per_machine_day),
            cable_failures=self._poisson(
                machine_days * rates.cable_per_machine_day),
            pcie_training_failures=self._binomial(
                self.fleet_size, rates.pcie_training_probability),
            dram_calibration_failures=self._binomial(
                self.fleet_size, rates.dram_calibration_probability),
            seu_flips=seu_flips,
            seu_role_hangs=hangs,
            seu_recoveries=hangs)
