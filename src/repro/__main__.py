"""Command-line experiment runner.

Usage::

    python -m repro                 # list experiments
    python -m repro E6              # run Fig. 10 and print its rows
    python -m repro E10 E1          # run several

For the full harness (with shape assertions and the remaining
experiments) use ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import sys

from . import experiments


def _print_result(key: str, result) -> None:
    print(f"\n== {key}: {experiments.REGISTRY[key][0]} ==")
    rows = getattr(result, "rows", None)
    if callable(rows):
        for row in rows():
            if isinstance(row, dict):
                print("  " + "  ".join(f"{k}={v}"
                                       for k, v in row.items()))
            else:
                print("  " + "  ".join(str(c) for c in row))
        return
    as_dict = getattr(result, "as_dict", None)
    if callable(as_dict):
        result = as_dict()
    if isinstance(result, dict):
        for name, value in result.items():
            print(f"  {name}: {value}")
        return
    print(f"  {result!r}")


def main(argv: list[str]) -> int:
    if not argv:
        print("Available experiments (see DESIGN.md / EXPERIMENTS.md):")
        for key, (description, _runner) in experiments.REGISTRY.items():
            print(f"  {key:>4}  {description}")
        print("\nRun one with: python -m repro <id>")
        return 0
    unknown = [key for key in argv if key not in experiments.REGISTRY]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    for key in argv:
        _description, runner = experiments.REGISTRY[key]
        _print_result(key, runner())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
