"""repro — a simulation reproduction of *A Cloud-Scale Acceleration
Architecture* (Catapult v2, MICRO 2016).

The package is organized bottom-up:

* :mod:`repro.sim` — discrete-event kernel,
* :mod:`repro.net` — the shared datacenter Ethernet (TOR/L1/L2, PFC,
  DC-QCN),
* :mod:`repro.torus` — the Catapult v1 6x8 torus baseline,
* :mod:`repro.router` — the Elastic Router (intra-FPGA crossbar),
* :mod:`repro.ltl` — the Lightweight Transport Layer,
* :mod:`repro.fpga` — board, shell, bridge, reconfig, SEU, power,
* :mod:`repro.crypto` — real AES/CBC/GCM/SHA-1 + §IV timing models,
* :mod:`repro.ranking` — Bing ranking acceleration (Figs. 6-8, 11),
* :mod:`repro.dnn` — pooled DNN accelerators (Fig. 12),
* :mod:`repro.haas` — Hardware-as-a-Service control plane,
* :mod:`repro.faults` — deterministic fault-injection campaigns,
* :mod:`repro.trace` — per-hop latency attribution + overlay ablations,
* :mod:`repro.deployment` — the 5,760-server reliability study,
* :mod:`repro.core` — the :class:`~repro.core.cloud.ConfigurableCloud`
  facade tying everything together.

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results of every figure and table.
"""

from .core.cloud import ConfigurableCloud
from .core.metrics import LatencyRecorder
from .core.server import Server
from .faults import (CampaignConfig, FaultEvent, FaultInjector, FaultKind,
                     generate_campaign)
from .fpga.shell import Shell, ShellConfig
from .ltl.engine import LtlConfig, LtlEngine, connect_pair
from .net.fabric import DatacenterFabric
from .net.topology import TopologyConfig
from .router.elastic_router import ElasticRouter
from .sim.kernel import Environment
from .trace import Stage, TraceContext, TraceRecorder, TraceReport

__version__ = "1.0.0"

__all__ = [
    "CampaignConfig",
    "ConfigurableCloud",
    "DatacenterFabric",
    "ElasticRouter",
    "Environment",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "LatencyRecorder",
    "LtlConfig",
    "LtlEngine",
    "Server",
    "Shell",
    "ShellConfig",
    "Stage",
    "TopologyConfig",
    "TraceContext",
    "TraceRecorder",
    "TraceReport",
    "connect_pair",
    "generate_campaign",
    "__version__",
]
