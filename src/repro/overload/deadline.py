"""Deadline/budget propagation (the unit of end-to-end overload control).

A request enters the system with a latency *budget*; the absolute
expiry instant derived from it is the request's **deadline**, and it
travels with the work through every stage — ranking-server queue,
Elastic Router virtual channel, LTL frame header, remote DNN/FFU hop.
Each stage checks the deadline *before* spending resources on the
request and drops-and-accounts expired work instead of processing it:
a request that can no longer make its SLO is pure queue poison, and
processing it steals capacity from requests that still can.

This is what turns a flash crowd from congestion collapse (every
request late, goodput → 0) into statistical degradation (excess
requests fail fast, admitted requests stay within SLO) — the same
design point as the paper's bandwidth limiting: "degrade statistically
rather than head-of-line blocking" (§V).

On the wire the deadline rides in the LTL frame header as an unsigned
microsecond timestamp (see :mod:`repro.ltl.frames`); 0 means "no
deadline", and values saturate at the u32 horizon (~71 simulated
minutes — far beyond any experiment here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: Wire encoding of "no deadline" in the LTL header.
NO_DEADLINE_US = 0
#: Saturation point of the u32 microsecond wire encoding.
MAX_DEADLINE_US = 0xFFFFFFFF


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry instant plus the budget it was derived from."""

    expires_at: float
    budget: float = 0.0
    issued_at: float = 0.0

    @classmethod
    def from_budget(cls, now: float, budget: float) -> "Deadline":
        """Stamp a fresh deadline ``budget`` seconds from ``now``."""
        if budget <= 0:
            raise ValueError("deadline budget must be positive")
        return cls(expires_at=now + budget, budget=budget, issued_at=now)

    def remaining(self, now: float) -> float:
        """Budget left (negative once expired)."""
        return self.expires_at - now

    def expired(self, now: float) -> bool:
        return now > self.expires_at


def encode_deadline_us(expires_at: Optional[float]) -> int:
    """Absolute expiry (seconds) -> u32 microsecond wire field.

    ``None`` (no deadline) encodes as :data:`NO_DEADLINE_US`; a deadline
    that would round down to 0 is bumped to 1 µs so it stays a deadline
    on the wire.
    """
    if expires_at is None:
        return NO_DEADLINE_US
    us = int(expires_at * 1e6)
    return max(1, min(us, MAX_DEADLINE_US))


def decode_deadline_us(deadline_us: int) -> Optional[float]:
    """u32 microsecond wire field -> absolute expiry in seconds."""
    if deadline_us == NO_DEADLINE_US:
        return None
    return deadline_us / 1e6


def expires_at_of(deadline: "Optional[Deadline | float]") -> Optional[float]:
    """Normalize a deadline argument (Deadline or raw seconds) to the
    absolute expiry float every hot path compares against."""
    if deadline is None:
        return None
    if isinstance(deadline, Deadline):
        return deadline.expires_at
    return float(deadline)


@dataclass
class DeadlineStats:
    """Per-stage drop accounting (every drop must be attributable).

    Stages are the canonical :class:`repro.trace.Stage` vocabulary — the
    same names the tracing subsystem attributes latency to, so "where do
    requests die" and "where does time go" line up key-for-key.  Members
    or their dotted string values are both accepted; keys are stored as
    the dotted strings.
    """

    #: canonical stage name (``Stage`` value) -> expired work units
    #: dropped there.
    dropped: Dict[str, int] = field(default_factory=dict)

    def drop(self, stage, count: int = 1) -> None:
        name = str(getattr(stage, "value", stage))
        self.dropped[name] = self.dropped.get(name, 0) + count

    @property
    def total(self) -> int:
        return sum(self.dropped.values())
