"""Hedged remote requests with a bounded hedge budget.

Remote acceleration (Fig. 11) makes one slow pool FPGA everyone's
problem: a limplocked peer inflates the tail of every server that
borrows it.  The classic tail-at-scale cure is the *hedged request*:
if the primary has not answered after roughly the P95 latency, issue
one duplicate to a *different* FPGA and take whichever answers first.
95% of requests never hedge, so the duplicate load is small, but the
slowest few percent — exactly the ones a slow peer produces — get a
second, independent draw.

Two disciplines keep hedging from becoming its own overload source:

* **Budget** — hedges are capped at a fraction of primary requests
  (default 5%).  The cap is a deterministic ratio check, not a token
  bucket with wall-clock refill, so seeded runs replay exactly.
* **Cancel on first win** — the loser is cancelled if it has not yet
  started service, so a hedge that loses the race while still queued
  costs nothing downstream.

The hedge delay adapts: it is the observed P95 of recent remote
latencies (a :class:`~repro.core.metrics.StreamingQuantile`, O(1)
memory), floored at ``min_delay``.  Until ``min_samples`` responses
have been seen the controller refuses to hedge — guessing a delay
from no data hedges either far too eagerly or never.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.metrics import StreamingQuantile


@dataclass
class HedgeConfig:
    """Tunables for hedged remote requests."""

    #: Issue the hedge after this latency percentile of observed
    #: responses (Dean & Barroso's "defer to the 95th percentile").
    quantile: float = 95.0
    #: Never hedge earlier than this (guards against a quantile
    #: estimate collapsing toward zero at light load).
    min_delay: float = 20e-6
    #: Hedges may not exceed this fraction of primary requests.
    budget_fraction: float = 0.05
    #: Observed responses required before hedging activates.
    min_samples: int = 50


@dataclass
class HedgeStats:
    """Outcome accounting for hedged requests."""

    primaries: int = 0
    hedges_issued: int = 0
    hedges_suppressed_budget: int = 0
    hedge_wins: int = 0
    primary_wins: int = 0
    hedges_cancelled_unstarted: int = 0

    @property
    def hedge_fraction(self) -> float:
        """Hedges as a fraction of primaries (the ≤-budget invariant)."""
        if self.primaries == 0:
            return 0.0
        return self.hedges_issued / self.primaries


class HedgeController:
    """Decides when to hedge and enforces the global hedge budget."""

    def __init__(self, config: Optional[HedgeConfig] = None):
        self.config = config or HedgeConfig()
        self.stats = HedgeStats()
        self._latency = StreamingQuantile(self.config.quantile)

    def observe(self, latency: float) -> None:
        """Feed one completed remote-request latency."""
        self._latency.record(latency)

    def hedge_delay(self) -> Optional[float]:
        """Delay after which the primary should be hedged, or ``None``
        while too little has been observed to pick one."""
        if self._latency.count < self.config.min_samples:
            return None
        return max(self.config.min_delay, self._latency.value)

    def on_primary(self) -> None:
        """Account one primary request being issued."""
        self.stats.primaries += 1

    def try_acquire_hedge(self) -> bool:
        """Spend one unit of hedge budget; False if the cap is hit.

        The invariant is ``hedges_issued <= budget_fraction * primaries``
        at every instant, checked deterministically — no refill clock.
        """
        allowed = int(self.config.budget_fraction * self.stats.primaries)
        if self.stats.hedges_issued + 1 > allowed:
            self.stats.hedges_suppressed_budget += 1
            return False
        self.stats.hedges_issued += 1
        return True

    def on_win(self, hedge_won: bool,
               loser_cancelled_unstarted: bool = False) -> None:
        """Record which leg answered first."""
        if hedge_won:
            self.stats.hedge_wins += 1
        else:
            self.stats.primary_wins += 1
        if loser_cancelled_unstarted:
            self.stats.hedges_cancelled_unstarted += 1
