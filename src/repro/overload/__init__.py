"""End-to-end overload protection: deadlines, admission, hedging.

The robustness half of ROADMAP item 2: make the reproduced ranking
pipeline survive *load* the way :mod:`repro.faults` made it survive
*faults*.  Three cooperating mechanisms:

* :mod:`repro.overload.deadline` — a latency budget rides with every
  request (including across the LTL wire) and every stage drops
  expired work instead of processing it.
* :mod:`repro.overload.admission` — a CoDel-style queue-delay
  controller drives a degradation ladder (full → degraded → shed) at
  the ranking server, replacing unbounded queueing.
* :mod:`repro.overload.hedging` — budget-capped hedged requests tame
  the remote-FPGA tail without amplifying load.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
    CoDelController,
    ServiceLevel,
)
from .deadline import (
    MAX_DEADLINE_US,
    NO_DEADLINE_US,
    Deadline,
    DeadlineStats,
    decode_deadline_us,
    encode_deadline_us,
    expires_at_of,
)
from .hedging import HedgeConfig, HedgeController, HedgeStats

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "CoDelController",
    "ServiceLevel",
    "Deadline",
    "DeadlineStats",
    "MAX_DEADLINE_US",
    "NO_DEADLINE_US",
    "decode_deadline_us",
    "encode_deadline_us",
    "expires_at_of",
    "HedgeConfig",
    "HedgeController",
    "HedgeStats",
]
