"""Admission control and load shedding for a ranking server.

The paper's software datacenter runs "a dynamic load balancing
mechanism that caps the incoming traffic when tail latencies begin
exceeding acceptable thresholds" (§VI, Fig. 7/8); this module is that
mechanism made explicit, replacing unbounded queueing with a
CoDel-style queue-delay controller driving a three-rung degradation
ladder:

``FULL``
    Normal service: accelerated feature extraction over the whole
    candidate set.
``DEGRADED``
    Brownout: the candidate set is pruned to a configured fraction
    (and, when the FPGA is unhealthy, features run on the software
    model) — cheaper per query, statistically slightly worse results.
``SHED``
    Reject-with-fast-error: the request is refused in microseconds so
    the client can retry elsewhere, instead of timing out seconds
    later at the back of a hopeless queue.

The controller watches the *measured queue delay* of admitted requests
(time from arrival to getting a core), CoDel-style: a request only
counts against the server when the **minimum** delay over a sliding
interval exceeds the target — transient bursts are free, standing
queues are not.  While the standing queue persists, an adaptive shed
fraction ramps up multiplicatively (and decays once the queue drains),
which reaches drop rates a pure CoDel control law cannot under a 5x
flash crowd.  All decisions are deterministic: shedding uses a debt
accumulator, not a random draw, so seeded runs replay bit-identically.

FPGA health feeds the ladder directly: a server whose accelerator left
``HEALTHY`` starts at ``DEGRADED`` (software-model fallback) no matter
what the queue says.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ServiceLevel(enum.Enum):
    """The degradation ladder, best to worst."""

    FULL = "full"
    DEGRADED = "degraded"
    SHED = "shed"


@dataclass
class AdmissionConfig:
    """Tunables of the queue-delay controller."""

    #: Acceptable standing queue delay (CoDel's ``target``); above it
    #: the server degrades (browns out) before it sheds.
    target_delay: float = 0.5e-3
    #: Sliding window over which the minimum delay must exceed the
    #: target before the controller engages (CoDel's ``interval``).
    interval: float = 50e-3
    #: Queue delay at which shedding (not just degrading) starts,
    #: as a multiple of ``target_delay``.
    shed_threshold: float = 2.0
    #: Additive-increase step of the shed fraction per control period
    #: while the queue keeps standing above the shed threshold.
    shed_step: float = 0.05
    #: Multiplicative decay of the shed fraction per control period
    #: once the queue is back under target.
    shed_decay: float = 0.5
    #: Never shed more than this fraction of arrivals — some traffic
    #: must keep flowing or the controller goes blind.
    max_shed_fraction: float = 0.98
    #: Control period for shed-fraction updates.
    control_period: float = 10e-3


class CoDelController:
    """Tracks whether a *standing* queue exists, CoDel-style.

    Feed it every measured queue delay via :meth:`on_delay`; it keeps
    the running minimum over the current interval.  ``above_target``
    turns True only after the minimum delay has stayed above target
    for a full interval — the controlled-delay insight that separates
    good bursts from bad queues.
    """

    def __init__(self, config: AdmissionConfig, start_time: float = 0.0):
        self.config = config
        #: When delays first went above target (None = currently below).
        self._first_above: Optional[float] = None
        self._engaged = False
        self._engaged_at: Optional[float] = None
        #: Minimum delay seen in the current observation interval.
        self._interval_min: Optional[float] = None
        self._interval_started = start_time
        self.last_delay = 0.0
        self.samples = 0

    @property
    def engaged(self) -> bool:
        """True while a standing queue (min delay > target) persists."""
        return self._engaged

    @property
    def engaged_since(self) -> Optional[float]:
        return self._engaged_at

    def min_delay(self) -> float:
        """Minimum queue delay observed in the current interval."""
        if self._interval_min is None:
            return 0.0
        return self._interval_min

    def on_delay(self, delay: float, now: float) -> None:
        """Record one measured queue delay."""
        cfg = self.config
        self.samples += 1
        self.last_delay = delay
        if self._interval_min is None or delay < self._interval_min:
            self._interval_min = delay
        if now - self._interval_started >= cfg.interval:
            self._evaluate(now)

    def _evaluate(self, now: float) -> None:
        cfg = self.config
        minimum = self._interval_min if self._interval_min is not None \
            else 0.0
        if minimum > cfg.target_delay:
            if self._first_above is None:
                self._first_above = now
            elif not self._engaged and \
                    now - self._first_above >= cfg.interval:
                self._engaged = True
                self._engaged_at = now
        else:
            self._first_above = None
            if self._engaged:
                self._engaged = False
                self._engaged_at = None
        self._interval_min = None
        self._interval_started = now


@dataclass
class AdmissionStats:
    """Ladder outcomes, by decision."""

    admitted_full: int = 0
    admitted_degraded: int = 0
    shed: int = 0
    level_changes: int = 0


class AdmissionController:
    """CoDel signal + FPGA health -> per-request service level.

    Call :meth:`on_queue_delay` with every admitted request's measured
    core-queue delay, keep :attr:`fpga_healthy` current, and ask
    :meth:`admit` for each arrival's fate.
    """

    def __init__(self, config: Optional[AdmissionConfig] = None,
                 start_time: float = 0.0):
        self.config = config or AdmissionConfig()
        self.codel = CoDelController(self.config, start_time=start_time)
        self.stats = AdmissionStats()
        #: Mirrors the bound FpgaManager's health (True = HEALTHY).
        self.fpga_healthy = True
        self.shed_fraction = 0.0
        self._shed_debt = 0.0
        self._last_control = start_time
        self._level = ServiceLevel.FULL

    # ------------------------------------------------------------------
    @property
    def level(self) -> ServiceLevel:
        """The ladder rung the *next* arrival will be offered (shedding
        aside)."""
        return self._level

    @property
    def engaged(self) -> bool:
        """True while the controller is actively protecting the server."""
        return self._level is not ServiceLevel.FULL \
            or self.shed_fraction > 0.0

    def on_queue_delay(self, delay: float, now: float) -> None:
        """Feed one measured queue delay (arrival -> core grant)."""
        self.codel.on_delay(delay, now)
        self._control(now)

    def _control(self, now: float) -> None:
        cfg = self.config
        if now - self._last_control < cfg.control_period:
            return
        self._last_control = now
        standing = self.codel.engaged
        hot = standing and \
            self.codel.last_delay > cfg.target_delay * cfg.shed_threshold
        if hot:
            # Standing queue beyond the shed threshold: ramp shedding.
            self.shed_fraction = min(
                cfg.max_shed_fraction,
                self.shed_fraction + cfg.shed_step
                + self.shed_fraction * cfg.shed_step * 4)
        elif not standing:
            self.shed_fraction *= cfg.shed_decay
            if self.shed_fraction < 1e-3:
                self.shed_fraction = 0.0
        new_level = ServiceLevel.FULL
        if not self.fpga_healthy or standing:
            new_level = ServiceLevel.DEGRADED
        if new_level is not self._level:
            self._level = new_level
            self.stats.level_changes += 1

    # ------------------------------------------------------------------
    def admit(self, now: float,
              predicted_delay: float = 0.0) -> ServiceLevel:
        """Decide one arrival's fate; deterministic given the feed.

        ``predicted_delay`` is the *instantaneous* queue-delay estimate
        at the door (queue length x expected service time).  The CoDel
        signal is measured from requests leaving the queue, so it lags
        a fast-rising flash crowd by one full queue draining; the
        prediction closes that loop instantly: an arrival that would
        wait past ``shed_threshold x target`` is shed on the spot, which
        bounds the queue delay of everything admitted behind it.
        """
        cfg = self.config
        self._control(now)
        if predicted_delay > cfg.target_delay * cfg.shed_threshold:
            self.stats.shed += 1
            return ServiceLevel.SHED
        if self.shed_fraction > 0.0:
            # Deterministic fractional shedding via a debt accumulator:
            # shed_fraction=0.4 sheds exactly 2 of every 5 arrivals.
            self._shed_debt += self.shed_fraction
            if self._shed_debt >= 1.0:
                self._shed_debt -= 1.0
                self.stats.shed += 1
                return ServiceLevel.SHED
        if self._level is ServiceLevel.DEGRADED \
                or predicted_delay > cfg.target_delay:
            self.stats.admitted_degraded += 1
            return ServiceLevel.DEGRADED
        self.stats.admitted_full += 1
        return ServiceLevel.FULL
